//! Frame-to-chunk assembly on the ingest server.
//!
//! Wowza groups consecutive frames into chunks of a target duration
//! (~3 s → ~75 frames of 40 ms) for HLS delivery. The chunking delay a
//! frame suffers equals the time until its chunk closes — which is why
//! chunk duration appears verbatim as the "Chunking" bar of Fig 11 and why
//! chunk size is the paper's primary scalability/latency tradeoff knob.

use std::ops::Deref;
use std::sync::Arc;

use bytes::Bytes;
use livescope_proto::hls::Chunk;
use livescope_proto::rtmp::VideoFrame;
use livescope_sim::{SimDuration, SimTime};

/// Assembles frames into fixed-duration chunks for one broadcast.
#[derive(Debug)]
pub struct Chunker {
    target: SimDuration,
    next_seq: u64,
    /// Frames of the open chunk plus their arrival instants.
    pending: Vec<VideoFrame>,
    open_since: Option<SimTime>,
    open_start_ts_us: u64,
}

/// A chunk plus the server-side instant it became ready.
///
/// The chunk body is refcounted: cloning a `ReadyChunk` bumps two
/// reference counts, never copies frame payloads. `encoded` is the wire
/// form produced exactly once when the chunk closed; every edge cache and
/// client download shares that one allocation.
#[derive(Clone, Debug)]
pub struct ReadyChunk {
    pub chunk: Arc<Chunk>,
    /// Wire encoding of `chunk`, produced once at seal time.
    pub encoded: Bytes,
    /// When the chunk closed on the ingest server.
    pub ready_at: SimTime,
}

impl Deref for ReadyChunk {
    type Target = Chunk;

    fn deref(&self) -> &Chunk {
        &self.chunk
    }
}

impl Chunker {
    /// A chunker with the given target chunk duration.
    ///
    /// # Panics
    /// Panics on zero duration — a zero-length chunk never closes time.
    pub fn new(target: SimDuration) -> Self {
        assert!(!target.is_zero(), "chunk duration must be positive");
        Chunker {
            target,
            next_seq: 0,
            pending: Vec::new(),
            open_since: None,
            open_start_ts_us: 0,
        }
    }

    /// Target chunk duration.
    pub fn target(&self) -> SimDuration {
        self.target
    }

    /// Frames waiting in the open chunk.
    pub fn pending_frames(&self) -> usize {
        self.pending.len()
    }

    /// Feeds one frame arriving at `now`; returns the chunk this frame
    /// closed, if any.
    ///
    /// A chunk closes when the wall-clock span since it opened reaches the
    /// target duration. Closing on arrival (not on a timer) matches a
    /// server that finalizes a segment when the first frame beyond its
    /// boundary shows up.
    pub fn push(&mut self, now: SimTime, frame: VideoFrame) -> Option<ReadyChunk> {
        match self.open_since {
            None => {
                self.open_since = Some(now);
                self.open_start_ts_us = frame.meta.capture_ts_us;
                self.pending.push(frame);
                None
            }
            Some(opened) => {
                if now.saturating_since(opened) >= self.target {
                    let ready = self.seal(opened, now);
                    self.open_since = Some(now);
                    self.open_start_ts_us = frame.meta.capture_ts_us;
                    self.pending.push(frame);
                    Some(ready)
                } else {
                    self.pending.push(frame);
                    None
                }
            }
        }
    }

    /// Closes the open chunk regardless of fill (end of broadcast).
    pub fn flush(&mut self, now: SimTime) -> Option<ReadyChunk> {
        let opened = self.open_since.take()?;
        if self.pending.is_empty() {
            return None;
        }
        Some(self.seal(opened, now))
    }

    fn seal(&mut self, opened: SimTime, now: SimTime) -> ReadyChunk {
        let frames = std::mem::take(&mut self.pending);
        let chunk = Chunk {
            seq: self.next_seq,
            start_ts_us: self.open_start_ts_us,
            duration_us: now.saturating_since(opened).as_micros(),
            frames,
        };
        self.next_seq += 1;
        let encoded = chunk.encode();
        ReadyChunk {
            chunk: Arc::new(chunk),
            encoded,
            ready_at: now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use livescope_proto::rtmp::FRAME_INTERVAL_MS;

    fn frame(seq: u64) -> VideoFrame {
        VideoFrame::new(
            seq,
            seq * FRAME_INTERVAL_MS * 1000,
            seq.is_multiple_of(75),
            Bytes::from(vec![0u8; 8]),
        )
    }

    fn feed(chunker: &mut Chunker, n: u64) -> Vec<ReadyChunk> {
        let mut out = Vec::new();
        for i in 0..n {
            let t = SimTime::from_millis(i * FRAME_INTERVAL_MS);
            if let Some(c) = chunker.push(t, frame(i)) {
                out.push(c);
            }
        }
        out
    }

    #[test]
    fn three_second_chunks_hold_75_frames() {
        let mut ch = Chunker::new(SimDuration::from_secs(3));
        let chunks = feed(&mut ch, 200);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].chunk.frames.len(), 75);
        assert_eq!(chunks[1].chunk.frames.len(), 75);
        assert_eq!(ch.pending_frames(), 50);
    }

    #[test]
    fn sequences_are_monotonic_and_frames_preserved() {
        let mut ch = Chunker::new(SimDuration::from_secs(1));
        let mut chunks = feed(&mut ch, 100);
        if let Some(last) = ch.flush(SimTime::from_secs(10)) {
            chunks.push(last);
        }
        let mut frame_seq = 0u64;
        for (expected, rc) in chunks.iter().enumerate() {
            assert_eq!(rc.chunk.seq, expected as u64);
            for f in &rc.chunk.frames {
                assert_eq!(f.meta.sequence, frame_seq, "frame lost or reordered");
                frame_seq += 1;
            }
        }
        assert_eq!(frame_seq, 100, "all frames must come out");
    }

    #[test]
    fn ready_time_is_open_plus_target() {
        let mut ch = Chunker::new(SimDuration::from_secs(3));
        let chunks = feed(&mut ch, 80);
        assert_eq!(chunks.len(), 1);
        // The 75th frame (t=3.0s) closes the chunk opened at t=0.
        assert_eq!(chunks[0].ready_at, SimTime::from_secs(3));
        assert_eq!(chunks[0].chunk.duration_us, 3_000_000);
    }

    #[test]
    fn flush_emits_partial_chunk() {
        let mut ch = Chunker::new(SimDuration::from_secs(3));
        feed(&mut ch, 10);
        let last = ch.flush(SimTime::from_millis(400)).unwrap();
        assert_eq!(last.chunk.frames.len(), 10);
        assert!(ch.flush(SimTime::from_secs(1)).is_none(), "double flush");
        assert_eq!(ch.pending_frames(), 0);
    }

    #[test]
    fn flush_on_empty_is_none() {
        let mut ch = Chunker::new(SimDuration::from_secs(3));
        assert!(ch.flush(SimTime::ZERO).is_none());
    }

    #[test]
    fn start_ts_tracks_first_frame_of_each_chunk() {
        let mut ch = Chunker::new(SimDuration::from_secs(3));
        let chunks = feed(&mut ch, 160);
        assert_eq!(chunks[0].chunk.start_ts_us, 0);
        assert_eq!(chunks[1].chunk.start_ts_us, 75 * 40_000);
    }

    #[test]
    fn irregular_arrivals_still_close_chunks() {
        // A bursty uplink: nothing for 5 s, then a burst — the burst's
        // first frame closes the stale chunk.
        let mut ch = Chunker::new(SimDuration::from_secs(3));
        assert!(ch.push(SimTime::ZERO, frame(0)).is_none());
        let closed = ch.push(SimTime::from_secs(5), frame(1));
        let rc = closed.expect("stale chunk must close");
        assert_eq!(rc.chunk.frames.len(), 1);
        assert_eq!(rc.chunk.duration_us, 5_000_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_duration_panics() {
        Chunker::new(SimDuration::ZERO);
    }

    #[test]
    fn seal_encodes_once_and_clones_share_the_allocation() {
        let mut ch = Chunker::new(SimDuration::from_secs(3));
        let chunks = feed(&mut ch, 80);
        let rc = &chunks[0];
        assert_eq!(rc.encoded, rc.chunk.encode(), "wire form matches");
        let clone = rc.clone();
        assert!(Arc::ptr_eq(&clone.chunk, &rc.chunk), "chunk is shared");
        assert_eq!(
            clone.encoded.as_ref().as_ptr(),
            rc.encoded.as_ref().as_ptr(),
            "encoded bytes are shared, not copied"
        );
    }
}
