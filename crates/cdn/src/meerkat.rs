//! Meerkat's ingest path (§4.1):
//!
//! > "In Meerkat, each broadcaster uses a single HTTP POST connection to
//! > continuously upload live video to Meerkat server (hosted by Amazon
//! > EC2), while viewers download video chucks from the server using
//! > HLS."
//!
//! The architectural consequences, all modelled here:
//!
//! * **no RTMP distribution at all** — there is no low-latency cohort;
//!   every viewer, including the very first, rides the chunk path;
//! * **chunked upload**: the POST body is consumed in segments, so the
//!   server only sees data at segment boundaries (we reuse the 40 ms
//!   frame stream but account it as one connection, not messages);
//! * **3.6 s chunks** (the paper's measured Meerkat chunk duration)
//!   instead of Periscope's 3 s — slightly worse chunking delay.

use bytes::Bytes;
use rand::rngs::SmallRng;

use livescope_net::datacenters::DatacenterId;
use livescope_proto::hls::MEERKAT_CHUNK_SECS;
use livescope_proto::rtmp::VideoFrame;
use livescope_sim::{SimDuration, SimTime};

use crate::chunker::{Chunker, ReadyChunk};
use crate::fastly::{FastlyPop, PollResponse};
use crate::ids::BroadcastId;

/// Meerkat's single-server ingest + edge (one EC2 site did both jobs).
pub struct MeerkatServer {
    dc: DatacenterId,
    sessions: std::collections::HashMap<BroadcastId, MeerkatSession>,
    edge: FastlyPop,
    /// Upload bytes consumed (one POST per broadcast — connection count
    /// stays 1 no matter how long the stream runs).
    pub upload_bytes: u64,
}

struct MeerkatSession {
    chunker: Chunker,
    origin: Vec<ReadyChunk>,
}

impl MeerkatServer {
    /// A server at `dc` with the paper's 3.6 s Meerkat chunks.
    pub fn new(dc: DatacenterId) -> Self {
        MeerkatServer {
            dc,
            sessions: std::collections::HashMap::new(),
            edge: FastlyPop::new(dc),
            upload_bytes: 0,
        }
    }

    /// The hosting datacenter.
    pub fn datacenter(&self) -> DatacenterId {
        self.dc
    }

    /// Opens a broadcast's upload POST.
    pub fn start_broadcast(&mut self, broadcast: BroadcastId) {
        self.sessions.insert(
            broadcast,
            MeerkatSession {
                chunker: Chunker::new(SimDuration::from_secs_f64(MEERKAT_CHUNK_SECS)),
                origin: Vec::new(),
            },
        );
    }

    /// Consumes one segment of the continuous upload. Returns the chunk
    /// it completed, if any.
    pub fn upload_segment(
        &mut self,
        now: SimTime,
        broadcast: BroadcastId,
        frame: VideoFrame,
    ) -> Option<ReadyChunk> {
        let session = self.sessions.get_mut(&broadcast)?;
        self.upload_bytes += frame.payload.len() as u64;
        let completed = session.chunker.push(now, frame);
        if let Some(ready) = &completed {
            session.origin.push(ready.clone());
        }
        completed
    }

    /// Viewers poll the chunklist straight off the server (no separate
    /// edge CDN in Meerkat's design — the same EC2 site serves HLS).
    pub fn poll(&mut self, now: SimTime, broadcast: BroadcastId) -> PollResponse {
        let origin = self
            .sessions
            .get(&broadcast)
            .map(|s| s.origin.as_slice())
            .unwrap_or(&[]);
        // Same-host "fetch": the chunk is already local; tiny staging
        // delay for cache insertion, regardless of batch size.
        self.edge
            .poll(now, broadcast, origin, |_: &crate::fastly::FetchPlan| {
                SimDuration::from_millis(5)
            })
    }

    /// Downloads a chunk's wire bytes.
    pub fn serve_chunk(&mut self, now: SimTime, broadcast: BroadcastId, seq: u64) -> Option<Bytes> {
        self.edge.serve_chunk(now, broadcast, seq)
    }

    /// Ends a broadcast, flushing the open chunk.
    pub fn end_broadcast(&mut self, now: SimTime, broadcast: BroadcastId) -> Option<ReadyChunk> {
        let mut session = self.sessions.remove(&broadcast)?;
        let last = session.chunker.flush(now);
        self.edge.evict(broadcast);
        last
    }

    /// Edge work counters (polls, chunk serves).
    pub fn edge_work(&self) -> crate::fastly::EdgeWork {
        self.edge.work
    }

    /// No-op placeholder for API symmetry with [`crate::WowzaServer`] —
    /// Meerkat had no per-viewer push state to manage.
    pub fn rtmp_subscribers(&self, _broadcast: BroadcastId) -> usize {
        0
    }
}

/// The latency floor of Meerkat's design: with no RTMP cohort, even the
/// first viewer pays chunking (3.6 s) + polling + buffering. Returns the
/// expected minimum end-to-end delay in seconds given a poll interval and
/// a pre-buffer (client parameters), for comparison against Periscope's
/// dual-path numbers.
pub fn latency_floor_s(poll_interval_s: f64, prebuffer_s: f64) -> f64 {
    MEERKAT_CHUNK_SECS + poll_interval_s / 2.0 + prebuffer_s
}

/// Unused-but-documented hook so the fault-injection suite can model a
/// flaky upload: Meerkat's single POST means one connection reset drops
/// the whole pipe until re-established (unlike per-frame RTMP messages).
pub fn upload_reset_penalty(rng: &mut SmallRng) -> SimDuration {
    use rand::Rng;
    SimDuration::from_secs_f64(rng.gen_range(1.0..4.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use livescope_proto::hls::ChunkList;

    fn frame(seq: u64) -> VideoFrame {
        VideoFrame::new(
            seq,
            seq * 40_000,
            seq.is_multiple_of(50),
            Bytes::from(vec![2u8; 2_000]),
        )
    }

    const B: BroadcastId = BroadcastId(7);

    fn streamed_server(frames: u64) -> MeerkatServer {
        let mut s = MeerkatServer::new(DatacenterId(0));
        s.start_broadcast(B);
        for i in 0..frames {
            s.upload_segment(SimTime::from_millis(i * 40), B, frame(i));
        }
        s
    }

    #[test]
    fn chunks_are_3_6_seconds() {
        // 3.6 s of 40 ms frames = 90 frames per chunk.
        let s = streamed_server(200);
        let mut probe = streamed_server(200);
        let resp = probe.poll(SimTime::from_secs(10), B);
        let _ = s;
        // Only chunk 0 (ready at 3.6 s) and chunk 1 (7.2 s) exist.
        assert_eq!(resp.fetches_started, 2);
        let resp = probe.poll(SimTime::from_secs(11), B);
        assert_eq!(resp.chunklist.entries.len(), 2);
        assert!((resp.chunklist.entries[0].duration_s - 3.6).abs() < 0.05);
    }

    #[test]
    fn upload_is_one_connection_worth_of_bytes() {
        let s = streamed_server(100);
        assert_eq!(s.upload_bytes, 100 * 2_000);
        assert_eq!(s.rtmp_subscribers(B), 0, "no push path exists");
    }

    #[test]
    fn viewers_download_chunks_via_the_same_host() {
        let mut s = streamed_server(200);
        s.poll(SimTime::from_secs(8), B);
        let wire = s
            .serve_chunk(SimTime::from_secs(9), B, 0)
            .expect("chunk available");
        let chunk = livescope_proto::hls::Chunk::decode(wire).unwrap();
        assert_eq!(chunk.frames.len(), 90);
        assert!(s.edge_work().chunks_served >= 1);
    }

    #[test]
    fn end_broadcast_flushes_and_evicts() {
        let mut s = streamed_server(100);
        let last = s.end_broadcast(SimTime::from_secs(4), B).unwrap();
        assert!(!last.chunk.frames.is_empty());
        let resp = s.poll(SimTime::from_secs(5), B);
        assert_eq!(resp.chunklist.entries.len(), 0);
        assert!(s.end_broadcast(SimTime::from_secs(6), B).is_none());
    }

    #[test]
    fn latency_floor_exceeds_periscope_rtmp_by_an_order() {
        // Meerkat's best case (2.8 s polls, 9 s pre-buffer like the
        // Periscope client) floors above 12 s — vs Periscope RTMP ≈1 s.
        let floor = latency_floor_s(2.8, 9.0);
        assert!(floor > 12.0, "floor {floor}");
        // Even a zero-buffer client cannot beat the chunk duration.
        assert!(latency_floor_s(0.5, 0.0) > MEERKAT_CHUNK_SECS);
    }

    #[test]
    fn chunklist_text_is_standard() {
        let mut s = streamed_server(200);
        s.poll(SimTime::from_secs(8), B);
        let resp = s.poll(SimTime::from_secs(9), B);
        let text = resp.chunklist.serialize();
        assert!(ChunkList::parse(&text).is_ok());
    }

    #[test]
    fn reset_penalty_is_seconds_scale() {
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let p = upload_reset_penalty(&mut rng).as_secs_f64();
            assert!((1.0..4.0).contains(&p));
        }
    }
}
