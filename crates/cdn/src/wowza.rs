//! The Wowza-style ingest server: persistent RTMP sessions, per-frame push
//! fan-out, and chunk assembly for the HLS path.
//!
//! One `WowzaServer` models one of the 8 EC2-hosted ingest datacenters.
//! Broadcasters connect with the token the control plane issued (compared
//! in plaintext — the §7 vulnerability is that *nothing else* is ever
//! checked); RTMP viewers subscribe and receive every frame as soon as it
//! arrives; a [`Chunker`] per broadcast feeds the HLS origin store.

use std::collections::HashMap;

use bytes::Bytes;
use rand::rngs::SmallRng;

use livescope_net::datacenters::DatacenterId;
use livescope_net::Link;
use livescope_proto::rtmp::{RtmpMessage, VideoFrame};
use livescope_sim::{SimDuration, SimTime};
use livescope_telemetry::span::{broadcast_span, chunk_seal_span};
use livescope_telemetry::{CounterId, HistogramId, SpanKind, Telemetry, TraceEvent};

use crate::chunker::{Chunker, ReadyChunk};
use crate::ids::{BroadcastId, UserId};

/// Ingest failure modes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IngestError {
    /// No such broadcast registered at this datacenter.
    UnknownBroadcast,
    /// Publisher presented the wrong token.
    BadToken,
    /// Wire bytes failed to decode as an RTMP frame message.
    Malformed,
    /// Frame failed the installed integrity verifier (§7.2 defense).
    VerificationFailed,
    /// Publisher already connected (duplicate connect).
    AlreadyPublishing,
    /// No publisher session (frames before connect).
    NotPublishing,
}

/// A frame delivery to one RTMP subscriber.
#[derive(Clone, Debug)]
pub struct PushDelivery {
    pub viewer: UserId,
    /// Encoded frame message as pushed on the wire.
    pub wire: Bytes,
    /// Sampled server→viewer delay; `None` when the subscriber's link
    /// dropped the frame.
    pub delay: Option<SimDuration>,
}

/// Result of ingesting one frame.
#[derive(Debug, Default)]
pub struct IngestOutcome {
    /// Per-subscriber pushes.
    pub deliveries: Vec<PushDelivery>,
    /// A chunk that closed with this frame, destined for the HLS origin
    /// store.
    pub completed_chunk: Option<ReadyChunk>,
}

/// Work counters, the raw material of the Fig 14 CPU comparison.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkCounters {
    /// Frames accepted from publishers.
    pub frames_in: u64,
    /// Frame messages pushed to subscribers (frames × audience).
    pub frame_pushes: u64,
    /// Bytes serialized onto subscriber connections.
    pub bytes_pushed: u64,
    /// Chunks assembled for the HLS origin.
    pub chunks_built: u64,
    /// Frames rejected by the integrity verifier.
    pub frames_rejected: u64,
}

/// Per-broadcast ingest session.
struct Session {
    token: String,
    publishing: bool,
    subscribers: Vec<(UserId, Link)>,
    chunker: Chunker,
    /// HLS origin store: chunks with their ready times, in seq order.
    origin: Vec<ReadyChunk>,
}

/// Optional per-frame integrity verifier (the §7.2 defense hook). Returns
/// `true` when the frame is authentic.
pub type FrameVerifier = Box<dyn Fn(&VideoFrame) -> bool + Send>;

/// One ingest datacenter.
pub struct WowzaServer {
    dc: DatacenterId,
    chunk_duration: SimDuration,
    sessions: HashMap<BroadcastId, Session>,
    verifier: Option<FrameVerifier>,
    /// Cumulative work counters.
    pub work: WorkCounters,
    telemetry: Telemetry,
    c_frames_in: CounterId,
    c_frame_pushes: CounterId,
    c_chunks_built: CounterId,
    c_frames_rejected: CounterId,
    h_chunk_duration_us: HistogramId,
}

impl WowzaServer {
    /// A server at `dc` producing chunks of `chunk_duration`.
    pub fn new(dc: DatacenterId, chunk_duration: SimDuration) -> Self {
        WowzaServer {
            dc,
            chunk_duration,
            sessions: HashMap::new(),
            verifier: None,
            work: WorkCounters::default(),
            telemetry: Telemetry::disabled(),
            c_frames_in: CounterId::INERT,
            c_frame_pushes: CounterId::INERT,
            c_chunks_built: CounterId::INERT,
            c_frames_rejected: CounterId::INERT,
            h_chunk_duration_us: HistogramId::INERT,
        }
    }

    /// Attaches telemetry: per-server ingest counters plus
    /// `RtmpFramePushed` / `ChunkCompleted` trace events. All servers
    /// attached to the same handle share one metric namespace.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.c_frames_in = telemetry.counter("wowza.frames_in");
        self.c_frame_pushes = telemetry.counter("wowza.frame_pushes");
        self.c_chunks_built = telemetry.counter("wowza.chunks_built");
        self.c_frames_rejected = telemetry.counter("wowza.frames_rejected");
        self.h_chunk_duration_us = telemetry.histogram("wowza.chunk_duration_us");
        self.telemetry = telemetry.clone();
    }

    /// Installs the frame integrity verifier (defense experiments).
    pub fn set_verifier(&mut self, verifier: Option<FrameVerifier>) {
        self.verifier = verifier;
    }

    /// Emits the chunk-seal span pair for a just-completed chunk: open at
    /// the chunk's media start, close when the origin copy is servable.
    fn emit_seal_span(&self, broadcast: BroadcastId, ready: &ReadyChunk) {
        let id = chunk_seal_span(broadcast.0, ready.chunk.seq);
        self.telemetry.emit(
            ready.chunk.start_ts_us,
            TraceEvent::SpanOpen {
                id,
                parent: broadcast_span(broadcast.0),
                kind: SpanKind::ChunkSeal,
                broadcast: broadcast.0,
                subject: ready.chunk.seq,
                site: self.dc.0,
            },
        );
        self.telemetry.emit(
            ready.ready_at.as_micros(),
            TraceEvent::SpanClose {
                id,
                kind: SpanKind::ChunkSeal,
            },
        );
    }

    /// Datacenter this server runs in.
    pub fn datacenter(&self) -> DatacenterId {
        self.dc
    }

    /// Registers a broadcast and its expected token (control-plane call).
    pub fn register_broadcast(&mut self, broadcast: BroadcastId, token: String) {
        self.sessions.insert(
            broadcast,
            Session {
                token,
                publishing: false,
                subscribers: Vec::new(),
                chunker: Chunker::new(self.chunk_duration),
                origin: Vec::new(),
            },
        );
    }

    /// Accepts a publisher connect carrying the (plaintext) token.
    pub fn connect_publisher(
        &mut self,
        broadcast: BroadcastId,
        token: &str,
    ) -> Result<(), IngestError> {
        let session = self
            .sessions
            .get_mut(&broadcast)
            .ok_or(IngestError::UnknownBroadcast)?;
        if session.token != token {
            return Err(IngestError::BadToken);
        }
        if session.publishing {
            return Err(IngestError::AlreadyPublishing);
        }
        session.publishing = true;
        Ok(())
    }

    /// Adds an RTMP subscriber with its delivery link.
    pub fn subscribe(
        &mut self,
        broadcast: BroadcastId,
        viewer: UserId,
        link: Link,
    ) -> Result<(), IngestError> {
        let session = self
            .sessions
            .get_mut(&broadcast)
            .ok_or(IngestError::UnknownBroadcast)?;
        session.subscribers.push((viewer, link));
        Ok(())
    }

    /// Removes an RTMP subscriber (no-op if absent).
    pub fn unsubscribe(&mut self, broadcast: BroadcastId, viewer: UserId) {
        if let Some(session) = self.sessions.get_mut(&broadcast) {
            session.subscribers.retain(|(u, _)| *u != viewer);
        }
    }

    /// Current RTMP subscriber count for a broadcast.
    pub fn subscriber_count(&self, broadcast: BroadcastId) -> usize {
        self.sessions
            .get(&broadcast)
            .map_or(0, |s| s.subscribers.len())
    }

    /// Ingests one frame *as wire bytes* arriving at `now`. Wire-level
    /// input means upstream tampering flows through the same decode path a
    /// real server would run.
    pub fn ingest_frame(
        &mut self,
        now: SimTime,
        broadcast: BroadcastId,
        wire: Bytes,
        rng: &mut SmallRng,
    ) -> Result<IngestOutcome, IngestError> {
        let frame = match RtmpMessage::decode(wire) {
            Ok(RtmpMessage::Frame(frame)) => frame,
            _ => return Err(IngestError::Malformed),
        };
        self.ingest_decoded(now, broadcast, frame, rng)
    }

    /// Ingests an already-decoded frame (the common fast path for
    /// large-scale simulations that skip wire encoding).
    pub fn ingest_decoded(
        &mut self,
        now: SimTime,
        broadcast: BroadcastId,
        frame: VideoFrame,
        rng: &mut SmallRng,
    ) -> Result<IngestOutcome, IngestError> {
        // Verify before borrowing the session mutably.
        if let Some(verifier) = &self.verifier {
            if !verifier(&frame) {
                self.work.frames_rejected += 1;
                self.telemetry.add(self.c_frames_rejected, 1);
                return Err(IngestError::VerificationFailed);
            }
        }
        let session = self
            .sessions
            .get_mut(&broadcast)
            .ok_or(IngestError::UnknownBroadcast)?;
        if !session.publishing {
            return Err(IngestError::NotPublishing);
        }
        self.work.frames_in += 1;
        // Push to every RTMP subscriber. The message is serialized *per
        // connection* — that per-frame, per-viewer copy is exactly the
        // work that makes RTMP expensive at scale (Fig 14); a real server
        // frames (and on RTMPS, encrypts) each socket's stream separately.
        let mut deliveries = Vec::with_capacity(session.subscribers.len());
        for (viewer, link) in session.subscribers.iter_mut() {
            let push_wire = RtmpMessage::Frame(frame.clone()).encode();
            self.work.frame_pushes += 1;
            self.work.bytes_pushed += push_wire.len() as u64;
            let delay = link.transmit(rng, now, push_wire.len()).delay();
            deliveries.push(PushDelivery {
                viewer: *viewer,
                wire: push_wire,
                delay,
            });
        }
        self.telemetry.add(self.c_frames_in, 1);
        self.telemetry
            .add(self.c_frame_pushes, deliveries.len() as u64);
        self.telemetry.emit(
            now.as_micros(),
            TraceEvent::RtmpFramePushed {
                broadcast: broadcast.0,
                seq: frame.meta.sequence,
                capture_us: frame.meta.capture_ts_us,
                subscribers: deliveries.len() as u32,
            },
        );
        let completed_chunk = session.chunker.push(now, frame);
        if let Some(ready) = &completed_chunk {
            self.work.chunks_built += 1;
            session.origin.push(ready.clone());
            self.telemetry.add(self.c_chunks_built, 1);
            self.telemetry
                .record(self.h_chunk_duration_us, ready.chunk.duration_us);
            self.telemetry.emit(
                ready.ready_at.as_micros(),
                TraceEvent::ChunkCompleted {
                    broadcast: broadcast.0,
                    seq: ready.chunk.seq,
                    start_ts_us: ready.chunk.start_ts_us,
                    duration_us: ready.chunk.duration_us,
                    frames: ready.chunk.frames.len() as u32,
                },
            );
            self.emit_seal_span(broadcast, ready);
        }
        Ok(IngestOutcome {
            deliveries,
            completed_chunk,
        })
    }

    /// Ends a broadcast: flushes the open chunk and drops the session.
    pub fn end_broadcast(&mut self, now: SimTime, broadcast: BroadcastId) -> Option<ReadyChunk> {
        let mut session = self.sessions.remove(&broadcast)?;
        let last = session.chunker.flush(now);
        if let Some(ready) = &last {
            self.work.chunks_built += 1;
            self.telemetry.add(self.c_chunks_built, 1);
            self.telemetry
                .record(self.h_chunk_duration_us, ready.chunk.duration_us);
            self.telemetry.emit(
                ready.ready_at.as_micros(),
                TraceEvent::ChunkCompleted {
                    broadcast: broadcast.0,
                    seq: ready.chunk.seq,
                    start_ts_us: ready.chunk.start_ts_us,
                    duration_us: ready.chunk.duration_us,
                    frames: ready.chunk.frames.len() as u32,
                },
            );
            self.emit_seal_span(broadcast, ready);
        }
        last
    }

    /// The HLS origin store for a broadcast (chunks + ready times).
    pub fn origin_chunks(&self, broadcast: BroadcastId) -> &[ReadyChunk] {
        self.sessions
            .get(&broadcast)
            .map_or(&[], |s| s.origin.as_slice())
    }

    /// True while the broadcast has a live publisher session.
    pub fn is_publishing(&self, broadcast: BroadcastId) -> bool {
        self.sessions.get(&broadcast).is_some_and(|s| s.publishing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livescope_net::geo::GeoPoint;
    use livescope_net::AccessLink;
    use rand::SeedableRng;

    fn server() -> WowzaServer {
        WowzaServer::new(DatacenterId(0), SimDuration::from_secs(3))
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    fn viewer_link() -> Link {
        Link::device_path(
            &GeoPoint::new(37.77, -122.42),
            &GeoPoint::new(39.04, -77.49),
            AccessLink::StableWifi,
        )
    }

    fn frame(seq: u64) -> VideoFrame {
        VideoFrame::new(
            seq,
            seq * 40_000,
            seq.is_multiple_of(75),
            Bytes::from(vec![7u8; 32]),
        )
    }

    fn frame_wire(seq: u64) -> Bytes {
        RtmpMessage::Frame(frame(seq)).encode()
    }

    const B: BroadcastId = BroadcastId(1);

    fn publishing_server() -> WowzaServer {
        let mut s = server();
        s.register_broadcast(B, "tok".into());
        s.connect_publisher(B, "tok").unwrap();
        s
    }

    #[test]
    fn token_gatekeeping_works() {
        let mut s = server();
        s.register_broadcast(B, "tok".into());
        assert_eq!(
            s.connect_publisher(BroadcastId(9), "tok"),
            Err(IngestError::UnknownBroadcast)
        );
        assert_eq!(s.connect_publisher(B, "wrong"), Err(IngestError::BadToken));
        assert!(s.connect_publisher(B, "tok").is_ok());
        assert_eq!(
            s.connect_publisher(B, "tok"),
            Err(IngestError::AlreadyPublishing)
        );
        assert!(s.is_publishing(B));
    }

    #[test]
    fn frames_before_connect_are_rejected() {
        let mut s = server();
        s.register_broadcast(B, "tok".into());
        let err = s
            .ingest_frame(SimTime::ZERO, B, frame_wire(0), &mut rng())
            .unwrap_err();
        assert_eq!(err, IngestError::NotPublishing);
    }

    #[test]
    fn malformed_wire_is_rejected() {
        let mut s = publishing_server();
        let err = s
            .ingest_frame(SimTime::ZERO, B, Bytes::from_static(b"junk"), &mut rng())
            .unwrap_err();
        assert_eq!(err, IngestError::Malformed);
        // A non-frame message is also not ingestible.
        let err = s
            .ingest_frame(SimTime::ZERO, B, RtmpMessage::Close.encode(), &mut rng())
            .unwrap_err();
        assert_eq!(err, IngestError::Malformed);
    }

    #[test]
    fn frames_fan_out_to_all_subscribers() {
        let mut s = publishing_server();
        let mut r = rng();
        for u in 0..5 {
            s.subscribe(B, UserId(u), viewer_link()).unwrap();
        }
        assert_eq!(s.subscriber_count(B), 5);
        let out = s
            .ingest_frame(SimTime::ZERO, B, frame_wire(0), &mut r)
            .unwrap();
        assert_eq!(out.deliveries.len(), 5);
        for d in &out.deliveries {
            assert!(d.delay.is_some());
            // What went out is a decodable frame message.
            match RtmpMessage::decode(d.wire.clone()).unwrap() {
                RtmpMessage::Frame(f) => assert_eq!(f.meta.sequence, 0),
                other => panic!("pushed {other:?}"),
            }
        }
        assert_eq!(s.work.frame_pushes, 5);
        assert!(s.work.bytes_pushed > 0);
    }

    #[test]
    fn unsubscribe_stops_deliveries() {
        let mut s = publishing_server();
        let mut r = rng();
        s.subscribe(B, UserId(1), viewer_link()).unwrap();
        s.subscribe(B, UserId(2), viewer_link()).unwrap();
        s.unsubscribe(B, UserId(1));
        let out = s
            .ingest_frame(SimTime::ZERO, B, frame_wire(0), &mut r)
            .unwrap();
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.deliveries[0].viewer, UserId(2));
    }

    #[test]
    fn chunks_reach_origin_store() {
        let mut s = publishing_server();
        let mut r = rng();
        let mut completed = 0;
        for i in 0..200u64 {
            let t = SimTime::from_millis(i * 40);
            let out = s.ingest_frame(t, B, frame_wire(i), &mut r).unwrap();
            if out.completed_chunk.is_some() {
                completed += 1;
            }
        }
        assert_eq!(completed, 2);
        assert_eq!(s.origin_chunks(B).len(), 2);
        assert_eq!(s.work.chunks_built, 2);
        assert_eq!(s.origin_chunks(B)[0].chunk.frames.len(), 75);
    }

    #[test]
    fn end_broadcast_flushes_and_forgets() {
        let mut s = publishing_server();
        let mut r = rng();
        for i in 0..10u64 {
            s.ingest_frame(SimTime::from_millis(i * 40), B, frame_wire(i), &mut r)
                .unwrap();
        }
        let last = s.end_broadcast(SimTime::from_secs(1), B).unwrap();
        assert_eq!(last.chunk.frames.len(), 10);
        assert!(!s.is_publishing(B));
        assert_eq!(
            s.ingest_frame(SimTime::from_secs(2), B, frame_wire(11), &mut r)
                .unwrap_err(),
            IngestError::UnknownBroadcast
        );
    }

    #[test]
    fn verifier_rejects_tampered_frames() {
        let mut s = publishing_server();
        let mut r = rng();
        // Accept only frames whose payload starts with 7 (our test frames).
        s.set_verifier(Some(Box::new(|f: &VideoFrame| {
            f.payload.first() == Some(&7)
        })));
        assert!(s
            .ingest_frame(SimTime::ZERO, B, frame_wire(0), &mut r)
            .is_ok());
        let mut evil = frame(1);
        evil.payload = Bytes::from_static(b"EVIL");
        let err = s
            .ingest_frame(
                SimTime::from_millis(40),
                B,
                RtmpMessage::Frame(evil).encode(),
                &mut r,
            )
            .unwrap_err();
        assert_eq!(err, IngestError::VerificationFailed);
        assert_eq!(s.work.frames_rejected, 1);
        assert_eq!(s.work.frames_in, 1);
    }

    #[test]
    fn work_counters_scale_with_audience() {
        // The Fig 14 mechanism in miniature: per-frame work is linear in
        // subscribers.
        let mut r = rng();
        let mut costs = Vec::new();
        for audience in [1usize, 10, 50] {
            let mut s = publishing_server();
            for u in 0..audience {
                s.subscribe(B, UserId(u as u64), viewer_link()).unwrap();
            }
            for i in 0..25u64 {
                s.ingest_frame(SimTime::from_millis(i * 40), B, frame_wire(i), &mut r)
                    .unwrap();
            }
            costs.push(s.work.frame_pushes);
        }
        assert_eq!(costs, vec![25, 250, 1250]);
    }
}
