//! Sharded per-POP HLS fan-out: the celebrity-broadcast delivery phase.
//!
//! The paper's introduction scenario — a heavily-followed account goes
//! live and thousands of HLS viewers pile onto edge POPs around the world
//! — is the workload that motivates the multi-lane scheduler backend:
//! each Fastly POP is an independent shard (its cache, work counters, and
//! viewer poll chains touch no other POP's state), while viewers that
//! *roam* between POPs (anycast re-routing mid-stream, §5.3) cross shards
//! through the scheduler's mailboxes.
//!
//! Determinism contract: the run is a pure function of
//! [`FanoutConfig::seed`]. Each viewer carries its own RNG stream
//! (`fork_indexed("fanout.viewer", id)`), so its poll jitter is identical
//! no matter which shard it currently lives on; trace events go through
//! [`EventCtx::emit`], so the merged trace is byte-identical for any lane
//! count. `tests/sharded_determinism.rs` in `livescope-core` asserts both.
//!
//! [`EventCtx::emit`]: livescope_sim::EventCtx::emit

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;

use livescope_net::datacenters::{self, DatacenterId, Provider};
use livescope_proto::rtmp::VideoFrame;
use livescope_sim::rng::splitmix64;
use livescope_sim::{
    BackendEvent, RngPool, SchedulerBackend, ShardId, ShardedScheduler, SimDuration, SimTime,
};
use livescope_telemetry::span::{origin_fetch_span, viewer_deliver_span};
use livescope_telemetry::{Section, SpanKind, Telemetry, TraceEvent};

use crate::chunker::{Chunker, ReadyChunk};
use crate::fastly::{FastlyPop, FetchPlan};
use crate::ids::BroadcastId;

/// Parameters for a per-POP fan-out run.
#[derive(Clone, Debug)]
pub struct FanoutConfig {
    /// Edge POPs, one scheduler shard each.
    pub pops: Vec<DatacenterId>,
    /// HLS viewers initially assigned to each POP.
    pub viewers_per_pop: usize,
    /// Stream length, seconds.
    pub stream_secs: u64,
    /// Chunk duration, seconds.
    pub chunk_secs: f64,
    /// Viewer chunklist poll interval, seconds.
    pub poll_interval_s: f64,
    /// After this many polls a viewer roams to the next POP (ring order).
    /// `0` disables roaming, making the shards fully independent.
    pub roam_every: u32,
    /// Root seed; the run is a pure function of it.
    pub seed: u64,
}

impl Default for FanoutConfig {
    fn default() -> Self {
        FanoutConfig {
            // Six POPs, like the six cities of the celebrity example.
            pops: datacenters::by_provider(Provider::Fastly)
                .take(6)
                .map(|d| d.id)
                .collect(),
            viewers_per_pop: 50,
            stream_secs: 60,
            chunk_secs: 3.0,
            poll_interval_s: 2.8,
            roam_every: 5,
            seed: 0xFA40,
        }
    }
}

/// One POP's shard state: the edge server plus fan-out bookkeeping.
pub struct PopShard {
    /// The edge POP owned by this shard.
    pub pop: FastlyPop,
    origin: Arc<Vec<ReadyChunk>>,
    broadcast: BroadcastId,
    end: SimTime,
    poll_interval: SimDuration,
    roam_every: u32,
    shard_count: u16,
    viewers_done: u64,
    roams_out: u64,
    checksum: u64,
    profile: PollSections,
}

/// Wall-clock sections of the poll handler (`handler.fanout.*_ns`),
/// following the workspace `profile` convention: with the feature off
/// these are zero-sized no-ops. Histogram recording is
/// order-insensitive — bucket counts and saturating sums commute — so
/// concurrent lanes recording into the shared registry cannot perturb
/// the deterministic results; only the timings themselves vary run to
/// run.
#[derive(Clone)]
struct PollSections {
    origin_poll: Section,
    serve_loop: Section,
    reschedule: Section,
}

impl PollSections {
    fn new(telemetry: &Telemetry) -> Self {
        PollSections {
            origin_poll: Section::new(telemetry, "fanout", "origin_poll"),
            serve_loop: Section::new(telemetry, "fanout", "serve_loop"),
            reschedule: Section::new(telemetry, "fanout", "reschedule"),
        }
    }
}

/// A viewer's poll-chain state; travels inside the event closure, so a
/// roaming viewer carries its RNG stream and download position with it.
struct Viewer {
    id: u64,
    have: Option<u64>,
    polls: u32,
    rng: SmallRng,
}

/// Per-POP results of a fan-out run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PopStats {
    /// Which POP.
    pub dc: DatacenterId,
    /// Chunklist polls served.
    pub polls_served: u64,
    /// Chunk downloads served.
    pub chunks_served: u64,
    /// Bytes moved to viewers.
    pub bytes_served: u64,
    /// Viewers whose poll chain ended on this POP.
    pub viewers_done: u64,
    /// Viewers this POP handed to the next POP.
    pub roams_out: u64,
    /// Order-insensitive digest of `(viewer, seq, time)` deliveries.
    pub checksum: u64,
}

/// The fan-out sweep result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FanoutReport {
    /// One entry per POP, in shard order.
    pub per_pop: Vec<PopStats>,
    /// Scheduler events executed across all shards.
    pub events_fired: u64,
    /// Digest over all deliveries (wrapping sum of per-POP checksums).
    pub checksum: u64,
}

impl FanoutReport {
    /// Total chunk downloads across POPs.
    pub fn chunks_served(&self) -> u64 {
        self.per_pop.iter().map(|p| p.chunks_served).sum()
    }

    /// Renders the per-POP table.
    pub fn render(&self) -> String {
        let mut out = String::from("per-POP fan-out (chunk deliveries over the stream)\n");
        for p in &self.per_pop {
            out.push_str(&format!(
                "  {:<12} polls {:>6}  chunks {:>6}  MB {:>7.1}  done {:>4}  roamed-out {:>4}\n",
                datacenters::datacenter(p.dc).city,
                p.polls_served,
                p.chunks_served,
                p.bytes_served as f64 / 1e6,
                p.viewers_done,
                p.roams_out,
            ));
        }
        out.push_str(&format!(
            "  total: {} chunk serves, {} events, checksum {:#018x}\n",
            self.chunks_served(),
            self.events_fired,
            self.checksum
        ));
        out
    }
}

fn fan_frame(seq: u64) -> VideoFrame {
    let size = if seq.is_multiple_of(50) { 9_000 } else { 2_500 };
    VideoFrame::new(
        seq,
        seq * 40_000,
        seq.is_multiple_of(50),
        bytes::Bytes::from(vec![7u8; size]),
    )
}

/// Assembles the broadcast's origin chunk store by running the stream's
/// frames through a real chunker (shared read-only by every POP shard).
pub fn build_origin(stream_secs: u64, chunk_secs: f64) -> Vec<ReadyChunk> {
    let mut chunker = Chunker::new(SimDuration::from_secs_f64(chunk_secs));
    let mut origin = Vec::new();
    for i in 0..stream_secs * 25 {
        let now = SimTime::from_millis(i * 40);
        if let Some(ready) = chunker.push(now, fan_frame(i)) {
            origin.push(ready);
        }
    }
    if let Some(ready) = chunker.flush(SimTime::from_secs(stream_secs)) {
        origin.push(ready);
    }
    origin
}

/// One step of a viewer's poll chain, packaged as a scheduler event.
fn poll_event(mut viewer: Viewer) -> BackendEvent<PopShard> {
    Box::new(move |ctx, shard: &mut PopShard| {
        let now = ctx.now();
        if now > shard.end {
            shard.viewers_done += 1;
            shard.checksum = shard.checksum.wrapping_add(splitmix64(
                viewer.id ^ viewer.have.unwrap_or(u64::MAX).wrapping_mul(0x9E37_79B9),
            ));
            return;
        }
        let origin = Arc::clone(&shard.origin);
        let fetch =
            |plan: &FetchPlan| SimDuration::from_millis(30 + (plan.total_bytes / 500_000) as u64);
        let poll_stamp = shard.profile.origin_poll.begin();
        let resp = shard.pop.poll(now, shard.broadcast, &origin, fetch);
        shard.profile.origin_poll.end(poll_stamp);
        let serve_stamp = shard.profile.serve_loop.begin();
        let pop_dc = shard.pop.datacenter();
        for entry in &resp.chunklist.entries {
            if viewer.have.is_some_and(|h| entry.seq <= h) {
                continue;
            }
            if shard
                .pop
                .serve_chunk(now, shard.broadcast, entry.seq)
                .is_some()
            {
                viewer.have = Some(entry.seq);
                shard.checksum = shard.checksum.wrapping_add(splitmix64(
                    splitmix64(viewer.id) ^ splitmix64(entry.seq) ^ now.as_micros(),
                ));
                let available = shard
                    .pop
                    .availability(shard.broadcast, entry.seq)
                    .unwrap_or(now);
                ctx.emit(TraceEvent::ChunkDelivered {
                    broadcast: shard.broadcast.0,
                    viewer: viewer.id,
                    seq: entry.seq,
                    pop: pop_dc.0,
                    available_at_pop_us: available.as_micros(),
                    discovered_us: now.as_micros(),
                    arrival_us: now.as_micros(),
                    duration_us: (entry.duration_s * 1e6) as u64,
                });
                // Deliver spans ride `ctx.emit` (stamped at `now`) so the
                // sharded merge orders them identically at any lane count.
                // Open and close coincide here: on the fan-out path a
                // download completes within the poll that discovered it.
                let span = viewer_deliver_span(shard.broadcast.0, entry.seq, viewer.id);
                ctx.emit(TraceEvent::SpanOpen {
                    id: span,
                    parent: origin_fetch_span(shard.broadcast.0, entry.seq, pop_dc.0),
                    kind: SpanKind::ViewerDeliver,
                    broadcast: shard.broadcast.0,
                    subject: viewer.id,
                    site: pop_dc.0,
                });
                ctx.emit(TraceEvent::SpanClose {
                    id: span,
                    kind: SpanKind::ViewerDeliver,
                });
            }
        }
        shard.profile.serve_loop.end(serve_stamp);
        let resched_stamp = shard.profile.reschedule.begin();
        viewer.polls += 1;
        let jitter = SimDuration::from_micros(viewer.rng.gen_range(0..200_000));
        let next = now + shard.poll_interval + jitter;
        if shard.roam_every > 0 && viewer.polls.is_multiple_of(shard.roam_every) {
            shard.roams_out += 1;
            let dest = ShardId((ctx.shard().0 + 1) % shard.shard_count);
            ctx.send_to(dest, next, poll_event(viewer));
        } else {
            ctx.schedule_at(next, poll_event(viewer));
        }
        shard.profile.reschedule.end(resched_stamp);
    })
}

/// Runs the fan-out on a [`ShardedScheduler`], one shard per POP, with
/// `lanes` worker lanes. Trace events (one [`TraceEvent::ChunkDelivered`]
/// per download) are merged into `telemetry` in `(time, shard, seq)`
/// order, so the sink's bytes are identical for any `lanes` value.
pub fn run_fanout(config: &FanoutConfig, lanes: usize, telemetry: &Telemetry) -> FanoutReport {
    assert!(!config.pops.is_empty(), "need at least one POP");
    assert!(config.viewers_per_pop > 0, "need at least one viewer");
    let broadcast = BroadcastId(1);
    let origin = Arc::new(build_origin(config.stream_secs, config.chunk_secs));
    let end = SimTime::ZERO
        + SimDuration::from_secs(config.stream_secs)
        + SimDuration::from_secs_f64(config.chunk_secs + config.poll_interval_s);
    let shard_count = config.pops.len() as u16;
    let profile = PollSections::new(telemetry);
    let shards: Vec<PopShard> = config
        .pops
        .iter()
        .map(|&dc| PopShard {
            pop: FastlyPop::new(dc),
            origin: Arc::clone(&origin),
            broadcast,
            end,
            poll_interval: SimDuration::from_secs_f64(config.poll_interval_s),
            roam_every: config.roam_every,
            shard_count,
            viewers_done: 0,
            roams_out: 0,
            checksum: 0,
            profile: profile.clone(),
        })
        .collect();
    // Epoch = one poll interval: cross-POP roams quantize to poll
    // boundaries, and the barrier count stays proportional to polls.
    let mut sched = ShardedScheduler::new(
        RngPool::new(config.seed),
        shards,
        SimDuration::from_secs_f64(config.poll_interval_s),
    )
    .with_lanes(lanes);
    sched.set_telemetry(telemetry);
    let pool = RngPool::new(config.seed);
    for (p, _) in config.pops.iter().enumerate() {
        for v in 0..config.viewers_per_pop {
            let id = (p * config.viewers_per_pop + v) as u64;
            let mut rng = pool.fork_indexed("fanout.viewer", id);
            let phase = SimDuration::from_secs_f64(rng.gen_range(0.0..config.poll_interval_s));
            let viewer = Viewer {
                id,
                have: None,
                polls: 0,
                rng,
            };
            sched.schedule(ShardId(p as u16), SimTime::ZERO + phase, poll_event(viewer));
        }
    }
    sched.run();
    let events_fired = sched.events_fired();
    let per_pop: Vec<PopStats> = sched
        .into_states()
        .into_iter()
        .map(|s| PopStats {
            dc: s.pop.datacenter(),
            polls_served: s.pop.work.polls_served,
            chunks_served: s.pop.work.chunks_served,
            bytes_served: s.pop.work.bytes_served,
            viewers_done: s.viewers_done,
            roams_out: s.roams_out,
            checksum: s.checksum,
        })
        .collect();
    let checksum = per_pop
        .iter()
        .fold(0u64, |acc, p| acc.wrapping_add(p.checksum));
    FanoutReport {
        per_pop,
        events_fired,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> FanoutConfig {
        FanoutConfig {
            viewers_per_pop: 8,
            stream_secs: 20,
            ..FanoutConfig::default()
        }
    }

    #[test]
    fn every_viewer_finishes_and_chunks_flow() {
        let config = quick();
        let report = run_fanout(&config, 1, &Telemetry::disabled());
        let total_viewers = (config.pops.len() * config.viewers_per_pop) as u64;
        assert_eq!(
            report.per_pop.iter().map(|p| p.viewers_done).sum::<u64>(),
            total_viewers
        );
        assert!(report.chunks_served() > 0);
        assert!(report.per_pop.iter().all(|p| p.polls_served > 0));
    }

    #[test]
    fn roaming_crosses_shards() {
        let report = run_fanout(&quick(), 1, &Telemetry::disabled());
        assert!(
            report.per_pop.iter().map(|p| p.roams_out).sum::<u64>() > 0,
            "roam_every=5 over a 20s stream must roam someone"
        );
    }

    #[test]
    fn lane_count_does_not_change_results() {
        let config = quick();
        let one = run_fanout(&config, 1, &Telemetry::disabled());
        for lanes in [2, 6] {
            let many = run_fanout(&config, lanes, &Telemetry::disabled());
            assert_eq!(one, many, "lanes={lanes}");
        }
    }

    #[test]
    fn disabling_roam_keeps_viewers_home() {
        let config = FanoutConfig {
            roam_every: 0,
            ..quick()
        };
        let report = run_fanout(&config, 2, &Telemetry::disabled());
        assert!(report.per_pop.iter().all(|p| p.roams_out == 0));
        assert!(report
            .per_pop
            .iter()
            .all(|p| p.viewers_done == config.viewers_per_pop as u64));
    }

    #[test]
    fn report_renders_every_pop() {
        let config = quick();
        let report = run_fanout(&config, 1, &Telemetry::disabled());
        let text = report.render();
        for &dc in &config.pops {
            assert!(text.contains(datacenters::datacenter(dc).city));
        }
        assert!(text.contains("checksum"));
    }
}
