//! The whole delivery system wired together: one control server, 8 Wowza
//! ingest datacenters, 23 Fastly POPs, the message bus, and the
//! inter-datacenter links — including the co-located-gateway replication
//! routing the paper infers in §5.3.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use livescope_net::datacenters::{self, DatacenterId, Provider};
use livescope_net::geo::GeoPoint;
use livescope_net::{AccessLink, Link};
use livescope_proto::hls::Chunk;
use livescope_proto::message::ChatEvent;
use livescope_proto::rtmp::VideoFrame;
use livescope_sim::{RngPool, SimDuration, SimTime};
use livescope_telemetry::span::broadcast_span;
use livescope_telemetry::{SpanKind, Telemetry, TraceEvent};

use crate::control::{ControlError, ControlServer, CreateGrant, JoinGrant};
use crate::fastly::{FastlyPop, FetchPlan, PollResponse};
use crate::ids::{BroadcastId, UserId};
use crate::pubnub::{MessageDelivery, PubNub};
use crate::wowza::{IngestError, IngestOutcome, WowzaServer};

/// Default coordination overhead a non-gateway POP pays on an origin
/// fetch: the gateway-mediated handshake the paper holds responsible for
/// the >0.25 s gap between co-located and merely-nearby pairs (Fig 15).
pub const GATEWAY_COORDINATION_S: f64 = 0.22;

/// Unified error for the cluster surface.
///
/// Cluster calls can fail in the control plane (the broadcast lookup, a
/// token check) or in the ingest plane; previously the control-plane half
/// was shoehorned into [`IngestError::UnknownBroadcast`]. Both planes keep
/// their own error enums — this wrapper says which plane refused.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CdnError {
    /// The control plane refused (unknown broadcast, bad token, ended).
    Control(ControlError),
    /// The ingest plane refused (not publishing, malformed frame, …).
    Ingest(IngestError),
}

impl From<ControlError> for CdnError {
    fn from(e: ControlError) -> Self {
        CdnError::Control(e)
    }
}

impl From<IngestError> for CdnError {
    fn from(e: IngestError) -> Self {
        CdnError::Ingest(e)
    }
}

impl CdnError {
    /// Stable human-readable text (wire error payloads, logs).
    pub fn as_str(&self) -> &'static str {
        match self {
            CdnError::Control(ControlError::UnknownBroadcast) => "unknown broadcast",
            CdnError::Control(ControlError::BroadcastEnded) => "broadcast ended",
            CdnError::Control(ControlError::BadToken) => "bad token",
            CdnError::Control(ControlError::NotACommenter) => "not a commenter",
            CdnError::Ingest(IngestError::UnknownBroadcast) => "unknown broadcast at ingest",
            CdnError::Ingest(IngestError::BadToken) => "bad ingest token",
            CdnError::Ingest(IngestError::Malformed) => "malformed frame",
            CdnError::Ingest(IngestError::VerificationFailed) => "frame verification failed",
            CdnError::Ingest(IngestError::AlreadyPublishing) => "already publishing",
            CdnError::Ingest(IngestError::NotPublishing) => "not publishing",
        }
    }
}

impl fmt::Display for CdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::error::Error for CdnError {}

/// The assembled system.
pub struct Cluster {
    pub control: ControlServer,
    /// Index == Wowza datacenter id (0..8).
    pub wowza: Vec<WowzaServer>,
    /// Index == Fastly datacenter id − 8 (0..23).
    pub fastly: Vec<FastlyPop>,
    pub pubnub: PubNub,
    rng: SmallRng,
    links: HashMap<(u16, u16), Link>,
    /// Coordination overhead for non-gateway fetches, seconds.
    pub gateway_coordination_s: f64,
    telemetry: Telemetry,
    c_gateway_repl: livescope_telemetry::CounterId,
}

impl Cluster {
    /// Builds the full 8+23-site system.
    pub fn new(pool: &RngPool, chunk_duration: SimDuration, rtmp_slots: u64) -> Self {
        let wowza = datacenters::by_provider(Provider::Wowza)
            .map(|dc| WowzaServer::new(dc.id, chunk_duration))
            .collect();
        let fastly = datacenters::by_provider(Provider::Fastly)
            .map(|dc| FastlyPop::new(dc.id))
            .collect();
        Cluster {
            control: ControlServer::new(
                SmallRng::seed_from_u64(pool.stream_seed("control")),
                rtmp_slots,
            ),
            wowza,
            fastly,
            pubnub: PubNub::new(),
            rng: SmallRng::seed_from_u64(pool.stream_seed("cluster")),
            links: HashMap::new(),
            gateway_coordination_s: GATEWAY_COORDINATION_S,
            telemetry: Telemetry::disabled(),
            c_gateway_repl: livescope_telemetry::CounterId::INERT,
        }
    }

    /// Attaches one telemetry handle to every component: the control
    /// server, all 8 ingest servers, all 23 POPs, the message bus, and the
    /// cluster's own gateway-replication tracing.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.control.attach_telemetry(telemetry);
        for server in &mut self.wowza {
            server.attach_telemetry(telemetry);
        }
        for pop in &mut self.fastly {
            pop.attach_telemetry(telemetry);
        }
        self.pubnub.attach_telemetry(telemetry);
        self.c_gateway_repl = telemetry.counter("cluster.gateway_replications");
        self.telemetry = telemetry.clone();
    }

    fn wowza_index(dc: DatacenterId) -> usize {
        assert!(dc.0 < 8, "not a Wowza datacenter: {dc:?}");
        dc.0 as usize
    }

    fn fastly_index(dc: DatacenterId) -> usize {
        assert!((8..31).contains(&dc.0), "not a Fastly datacenter: {dc:?}");
        dc.0 as usize - 8
    }

    /// Creates a broadcast: control-plane grant plus ingest registration.
    pub fn create_broadcast(
        &mut self,
        now: SimTime,
        user: UserId,
        location: &GeoPoint,
    ) -> CreateGrant {
        let grant = self.control.create_broadcast(now, user, location);
        self.wowza[Self::wowza_index(grant.wowza_dc)]
            .register_broadcast(grant.id, grant.token.clone());
        grant
    }

    /// The broadcast's ingest datacenter, or the control-plane error that
    /// says why the lookup failed.
    fn wowza_dc_of(&self, broadcast: BroadcastId) -> Result<DatacenterId, CdnError> {
        Ok(self
            .control
            .broadcast(broadcast)
            .ok_or(ControlError::UnknownBroadcast)?
            .wowza_dc)
    }

    /// Publisher connects to its ingest server with the plaintext token
    /// at `now`.
    pub fn connect_publisher(
        &mut self,
        now: SimTime,
        broadcast: BroadcastId,
        token: &str,
    ) -> Result<(), CdnError> {
        let dc = self.wowza_dc_of(broadcast)?;
        self.wowza[Self::wowza_index(dc)].connect_publisher(broadcast, token)?;
        self.telemetry.emit(
            now.as_micros(),
            TraceEvent::PublisherConnected {
                broadcast: broadcast.0,
                wowza: dc.0,
            },
        );
        self.telemetry.emit(
            now.as_micros(),
            TraceEvent::SpanOpen {
                id: broadcast_span(broadcast.0),
                parent: 0,
                kind: SpanKind::Broadcast,
                broadcast: broadcast.0,
                subject: 0,
                site: dc.0,
            },
        );
        Ok(())
    }

    /// Admits a viewer via the control plane at `now`.
    pub fn join_viewer(
        &mut self,
        now: SimTime,
        broadcast: BroadcastId,
        viewer: UserId,
        location: &GeoPoint,
    ) -> Result<JoinGrant, ControlError> {
        self.control.join(now, broadcast, viewer, location)
    }

    /// Subscribes an admitted RTMP viewer at `location` over `access`
    /// at `now`.
    pub fn subscribe_rtmp(
        &mut self,
        now: SimTime,
        broadcast: BroadcastId,
        viewer: UserId,
        location: &GeoPoint,
        access: AccessLink,
    ) -> Result<(), CdnError> {
        let dc = self.wowza_dc_of(broadcast)?;
        let link = Link::device_path(location, &datacenters::datacenter(dc).location, access);
        self.wowza[Self::wowza_index(dc)].subscribe(broadcast, viewer, link)?;
        self.telemetry.emit(
            now.as_micros(),
            TraceEvent::RtmpSubscribed {
                broadcast: broadcast.0,
                viewer: viewer.0,
                wowza: dc.0,
            },
        );
        Ok(())
    }

    /// Ingests a frame (wire bytes) at the broadcast's ingest server.
    pub fn ingest_frame(
        &mut self,
        now: SimTime,
        broadcast: BroadcastId,
        wire: Bytes,
    ) -> Result<IngestOutcome, CdnError> {
        let dc = self.wowza_dc_of(broadcast)?;
        Ok(self.wowza[Self::wowza_index(dc)].ingest_frame(now, broadcast, wire, &mut self.rng)?)
    }

    /// Ingests an already-decoded frame (fast path).
    pub fn ingest_decoded(
        &mut self,
        now: SimTime,
        broadcast: BroadcastId,
        frame: VideoFrame,
    ) -> Result<IngestOutcome, CdnError> {
        let dc = self.wowza_dc_of(broadcast)?;
        Ok(self.wowza[Self::wowza_index(dc)].ingest_decoded(
            now,
            broadcast,
            frame,
            &mut self.rng,
        )?)
    }

    /// An HLS viewer (or the crawler) polls POP `pop_dc` for a broadcast's
    /// chunklist. Origin fetches triggered by this poll are routed through
    /// the co-located gateway per §5.3.
    pub fn poll_hls(
        &mut self,
        now: SimTime,
        broadcast: BroadcastId,
        pop_dc: DatacenterId,
    ) -> Result<PollResponse, CdnError> {
        let wowza_dc = self.wowza_dc_of(broadcast)?;
        let Cluster {
            wowza,
            fastly,
            links,
            rng,
            gateway_coordination_s,
            telemetry,
            c_gateway_repl,
            ..
        } = self;
        let origin = wowza[Self::wowza_index(wowza_dc)].origin_chunks(broadcast);
        let coordination = *gateway_coordination_s;
        let gateway = datacenters::co_located_fastly(datacenters::datacenter(wowza_dc))
            .map(|gw| gw.id)
            .filter(|gw| *gw != pop_dc);
        let fetch = |plan: &FetchPlan| {
            // One gateway-routed transfer per poll: the whole batch rides
            // a single sampled path, so the §5.3 coordination overhead is
            // paid exactly once no matter how many chunks are pulled.
            let delay = fetch_delay(
                links,
                rng,
                now,
                wowza_dc,
                pop_dc,
                plan.total_bytes,
                coordination,
            );
            // A fetch by a non-gateway POP rides the §5.3 replication
            // detour through the co-located gateway.
            if let Some(gw) = gateway {
                telemetry.add(*c_gateway_repl, 1);
                telemetry.emit(
                    now.as_micros(),
                    TraceEvent::GatewayReplicated {
                        broadcast: broadcast.0,
                        wowza: wowza_dc.0,
                        gateway: gw.0,
                        pop: pop_dc.0,
                        transfer_us: delay.as_micros(),
                    },
                );
            }
            delay
        };
        Ok(fastly[Self::fastly_index(pop_dc)].poll(now, broadcast, origin, fetch))
    }

    /// Downloads a chunk from a POP (None until it is available there).
    /// The returned chunk is a shared view of the origin's — no payload
    /// copy happens on this path.
    pub fn download_chunk(
        &mut self,
        now: SimTime,
        broadcast: BroadcastId,
        pop_dc: DatacenterId,
        seq: u64,
    ) -> Option<Arc<Chunk>> {
        self.fastly[Self::fastly_index(pop_dc)].get_chunk(now, broadcast, seq)
    }

    /// Publishes a chat event on the message bus.
    pub fn publish_chat(&mut self, now: SimTime, event: ChatEvent) -> Vec<MessageDelivery> {
        self.pubnub.publish(now, event, &mut self.rng)
    }

    /// Ends a broadcast everywhere: control plane, ingest flush, edge
    /// caches, message channel.
    pub fn end_broadcast(
        &mut self,
        now: SimTime,
        broadcast: BroadcastId,
        token: &str,
    ) -> Result<(), CdnError> {
        let dc = self.control.end_broadcast(now, broadcast, token)?;
        self.wowza[Self::wowza_index(dc)].end_broadcast(now, broadcast);
        for pop in &mut self.fastly {
            pop.evict(broadcast);
        }
        self.pubnub.close_channel(broadcast);
        self.telemetry.emit(
            now.as_micros(),
            TraceEvent::SpanClose {
                id: broadcast_span(broadcast.0),
                kind: SpanKind::Broadcast,
            },
        );
        Ok(())
    }

    /// Samples one origin-fetch delay between a Wowza site and a POP with
    /// full jitter — the Fig 15 measurement primitive.
    pub fn sample_fetch_delay(
        &mut self,
        wowza_dc: DatacenterId,
        pop_dc: DatacenterId,
        bytes: usize,
        now: SimTime,
    ) -> SimDuration {
        let Cluster {
            links,
            rng,
            gateway_coordination_s,
            ..
        } = self;
        fetch_delay(
            links,
            rng,
            now,
            wowza_dc,
            pop_dc,
            bytes,
            *gateway_coordination_s,
        )
    }

    /// The deterministic expectation of the origin-fetch delay between a
    /// Wowza site and a POP (no jitter) — used by calibration tests.
    pub fn expected_fetch_delay(
        &mut self,
        wowza_dc: DatacenterId,
        pop_dc: DatacenterId,
        bytes: usize,
    ) -> SimDuration {
        let Cluster {
            links,
            gateway_coordination_s,
            ..
        } = self;
        expected_fetch_delay(links, wowza_dc, pop_dc, bytes, *gateway_coordination_s)
    }
}

fn link_between(
    links: &mut HashMap<(u16, u16), Link>,
    from: DatacenterId,
    to: DatacenterId,
) -> &mut Link {
    links.entry((from.0, to.0)).or_insert_with(|| {
        Link::between_datacenters(
            &datacenters::datacenter(from).location,
            &datacenters::datacenter(to).location,
        )
    })
}

/// Samples the origin→edge fetch delay with gateway routing:
///
/// * POP co-located with the Wowza site (it *is* the gateway): one short
///   hop;
/// * any other POP, when a gateway exists: Wowza → gateway, coordination
///   overhead, gateway → POP;
/// * no gateway on the continent (São Paulo): direct + coordination.
fn fetch_delay(
    links: &mut HashMap<(u16, u16), Link>,
    rng: &mut SmallRng,
    now: SimTime,
    wowza_dc: DatacenterId,
    pop_dc: DatacenterId,
    bytes: usize,
    coordination_s: f64,
) -> SimDuration {
    let wowza = datacenters::datacenter(wowza_dc);
    let pop = datacenters::datacenter(pop_dc);
    let gateway = datacenters::co_located_fastly(wowza);
    let sample = |links: &mut HashMap<(u16, u16), Link>,
                  rng: &mut SmallRng,
                  from: DatacenterId,
                  to: DatacenterId| {
        link_between(links, from, to)
            .transmit(rng, now, bytes)
            .delay()
            .expect("inter-DC links are loss-free")
    };
    match gateway {
        Some(gw) if gw.id == pop.id => sample(links, rng, wowza_dc, pop_dc),
        Some(gw) => {
            sample(links, rng, wowza_dc, gw.id)
                + SimDuration::from_secs_f64(coordination_s)
                + sample(links, rng, gw.id, pop_dc)
        }
        None => SimDuration::from_secs_f64(coordination_s) + sample(links, rng, wowza_dc, pop_dc),
    }
}

/// Jitter-free version of [`fetch_delay`] for calibration.
fn expected_fetch_delay(
    links: &mut HashMap<(u16, u16), Link>,
    wowza_dc: DatacenterId,
    pop_dc: DatacenterId,
    bytes: usize,
    coordination_s: f64,
) -> SimDuration {
    let wowza = datacenters::datacenter(wowza_dc);
    let pop = datacenters::datacenter(pop_dc);
    let gateway = datacenters::co_located_fastly(wowza);
    let expected = |links: &mut HashMap<(u16, u16), Link>, from: DatacenterId, to: DatacenterId| {
        link_between(links, from, to).expected_delay(bytes)
    };
    match gateway {
        Some(gw) if gw.id == pop.id => expected(links, wowza_dc, pop_dc),
        Some(gw) => {
            expected(links, wowza_dc, gw.id)
                + SimDuration::from_secs_f64(coordination_s)
                + expected(links, gw.id, pop_dc)
        }
        None => SimDuration::from_secs_f64(coordination_s) + expected(links, wowza_dc, pop_dc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livescope_proto::rtmp::RtmpMessage;

    fn cluster() -> Cluster {
        Cluster::new(&RngPool::new(42), SimDuration::from_secs(3), 100)
    }

    fn sf() -> GeoPoint {
        GeoPoint::new(37.77, -122.42)
    }

    fn frame(seq: u64) -> VideoFrame {
        VideoFrame::new(
            seq,
            seq * 40_000,
            seq.is_multiple_of(75),
            Bytes::from(vec![3u8; 64]),
        )
    }

    #[test]
    fn cluster_has_the_paper_topology() {
        let c = cluster();
        assert_eq!(c.wowza.len(), 8);
        assert_eq!(c.fastly.len(), 23);
    }

    #[test]
    fn full_broadcast_lifecycle() {
        let mut c = cluster();
        let t0 = SimTime::ZERO;
        let grant = c.create_broadcast(t0, UserId(1), &sf());
        c.connect_publisher(t0, grant.id, &grant.token).unwrap();
        // RTMP viewer joins and subscribes.
        let join = c.join_viewer(t0, grant.id, UserId(2), &sf()).unwrap();
        let rtmp_dc = join.rtmp.expect("early viewer gets RTMP");
        assert_eq!(rtmp_dc, grant.wowza_dc);
        c.subscribe_rtmp(t0, grant.id, UserId(2), &sf(), AccessLink::StableWifi)
            .unwrap();
        // Push 80 frames: one chunk closes, the viewer gets 80 pushes.
        let mut pushes = 0;
        let mut chunks = 0;
        for i in 0..80u64 {
            let t = t0 + SimDuration::from_millis(i * 40);
            let wire = RtmpMessage::Frame(frame(i)).encode();
            let out = c.ingest_frame(t, grant.id, wire).unwrap();
            pushes += out.deliveries.len();
            chunks += out.completed_chunk.is_some() as usize;
        }
        assert_eq!(pushes, 80);
        assert_eq!(chunks, 1);
        // An HLS viewer in Tokyo polls its nearest POP.
        let hls_join = c
            .join_viewer(t0, grant.id, UserId(3), &GeoPoint::new(35.68, 139.65))
            .unwrap();
        let pop_dc = DatacenterId(hls_join.hls_url.dc);
        let t_poll = t0 + SimDuration::from_secs(4);
        let resp = c.poll_hls(t_poll, grant.id, pop_dc).unwrap();
        assert_eq!(resp.fetches_started, 1);
        // After the fetch completes a poll sees the chunk and can fetch it.
        let t_later = t0 + SimDuration::from_secs(8);
        let resp = c.poll_hls(t_later, grant.id, pop_dc).unwrap();
        assert_eq!(resp.chunklist.latest_seq(), Some(0));
        let chunk = c.download_chunk(t_later, grant.id, pop_dc, 0).unwrap();
        assert_eq!(chunk.frames.len(), 75);
        // End everywhere.
        c.end_broadcast(t_later, grant.id, &grant.token).unwrap();
        assert_eq!(c.control.live_count(), 0);
        assert!(
            c.poll_hls(t_later, grant.id, pop_dc).is_ok(),
            "poll after end is a cache miss, not an error"
        );
    }

    #[test]
    fn gateway_routing_orders_fetch_delays() {
        let mut c = cluster();
        let bytes = 200_000;
        // Ashburn Wowza (dc 0): gateway is Ashburn Fastly (dc 8).
        let co_located = c.expected_fetch_delay(DatacenterId(0), DatacenterId(8), bytes);
        // New York POP (dc 9) is near Ashburn but NOT co-located.
        let nearby = c.expected_fetch_delay(DatacenterId(0), DatacenterId(9), bytes);
        // Tokyo POP (dc 27) from Ashburn: far.
        let far = c.expected_fetch_delay(DatacenterId(0), DatacenterId(27), bytes);
        assert!(co_located < nearby, "{co_located} !< {nearby}");
        assert!(nearby < far, "{nearby} !< {far}");
        // The co-located vs nearby gap is dominated by the coordination
        // overhead (paper: >0.25 s including transfer asymmetry).
        let gap = nearby.as_secs_f64() - co_located.as_secs_f64();
        assert!(gap > 0.2, "gateway gap only {gap}s");
    }

    #[test]
    fn sao_paulo_has_no_gateway_but_still_fetches() {
        let mut c = cluster();
        // São Paulo Wowza (dc 3) → Miami POP (dc 12): direct + coordination.
        let d = c.expected_fetch_delay(DatacenterId(3), DatacenterId(12), 100_000);
        assert!(d.as_secs_f64() > GATEWAY_COORDINATION_S);
        assert!(d.as_secs_f64() < 2.0);
    }

    #[test]
    fn chat_events_flow_through_the_bus() {
        let mut c = cluster();
        let grant = c.create_broadcast(SimTime::ZERO, UserId(1), &sf());
        let link = Link::device_path(
            &sf(),
            &datacenters::datacenter(DatacenterId(8)).location,
            AccessLink::StableWifi,
        );
        c.pubnub.subscribe(grant.id, UserId(2), link);
        let deliveries = c.publish_chat(
            SimTime::from_secs(1),
            ChatEvent {
                broadcast_id: grant.id.0,
                user_id: 2,
                ts_us: 5,
                kind: livescope_proto::message::EventKind::Heart,
            },
        );
        assert_eq!(deliveries.len(), 1);
    }

    #[test]
    fn ingest_on_unknown_broadcast_errors() {
        let mut c = cluster();
        let wire = RtmpMessage::Frame(frame(0)).encode();
        assert_eq!(
            c.ingest_frame(SimTime::ZERO, BroadcastId(404), wire)
                .unwrap_err(),
            CdnError::Control(ControlError::UnknownBroadcast),
            "a missing broadcast is a control-plane error, not an ingest one"
        );
    }

    #[test]
    fn downloaded_chunk_aliases_the_origin_chunk() {
        // End-to-end zero-copy: the Arc a viewer downloads from a POP is
        // the same allocation the ingest server's chunker sealed.
        let mut c = cluster();
        let t0 = SimTime::ZERO;
        let grant = c.create_broadcast(t0, UserId(1), &sf());
        c.connect_publisher(t0, grant.id, &grant.token).unwrap();
        for i in 0..80u64 {
            let t = t0 + SimDuration::from_millis(i * 40);
            c.ingest_decoded(t, grant.id, frame(i)).unwrap();
        }
        let pop_dc = DatacenterId(8);
        c.poll_hls(SimTime::from_secs(4), grant.id, pop_dc).unwrap();
        let t_later = SimTime::from_secs(30);
        let downloaded = c
            .download_chunk(t_later, grant.id, pop_dc, 0)
            .expect("chunk fetched and available");
        let origin = &c.wowza[grant.wowza_dc.0 as usize].origin_chunks(grant.id)[0];
        assert!(
            Arc::ptr_eq(&downloaded, &origin.chunk),
            "download must alias the origin allocation"
        );
    }
}
