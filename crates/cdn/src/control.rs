//! The Periscope control server: token issuance, join admission (RTMP →
//! HLS handoff at the slot limit), the commenter cap, and the global
//! broadcast list the crawler samples.

use std::collections::{HashMap, HashSet};

use rand::rngs::SmallRng;
use rand::Rng;

use livescope_net::datacenters::{self, DatacenterId, Provider};
use livescope_net::geo::GeoPoint;
use livescope_proto::control::{BroadcastSummary, Scheme, StreamUrl};
use livescope_sim::SimTime;
use livescope_telemetry::span::{broadcast_span, viewer_session_span};
use livescope_telemetry::{CounterId, GaugeId, SpanKind, Telemetry, TraceEvent};

use crate::ids::{token_from_word, BroadcastId, UserId};

/// How many broadcasts one global-list query returns (§3.1: "the global
/// list shows 50 random selected broadcasts").
pub const GLOBAL_LIST_SAMPLE: usize = 50;

/// Control-plane record of one broadcast.
#[derive(Clone, Debug)]
pub struct BroadcastState {
    pub broadcaster: UserId,
    pub token: String,
    pub wowza_dc: DatacenterId,
    pub started: SimTime,
    pub ended: Option<SimTime>,
    /// Viewers admitted to RTMP (the first `rtmp_slots`).
    pub rtmp_viewers: u64,
    /// Viewers handed to HLS.
    pub hls_viewers: u64,
    /// Users allowed to comment (== the RTMP-admitted set).
    pub commenters: HashSet<UserId>,
    pub hearts: u64,
    pub comments: u64,
}

/// Join admission outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinGrant {
    /// RTMP access (with the broadcast's ingest DC) for early arrivals.
    pub rtmp: Option<DatacenterId>,
    /// Every viewer may fall back to (or is assigned) HLS.
    pub hls_url: StreamUrl,
    /// Comment rights (tied to RTMP admission, §4.1).
    pub can_comment: bool,
}

/// Result of creating a broadcast.
#[derive(Clone, Debug)]
pub struct CreateGrant {
    pub id: BroadcastId,
    pub token: String,
    pub wowza_dc: DatacenterId,
    pub rtmp_url: StreamUrl,
    pub hls_url: StreamUrl,
}

/// Control-server errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ControlError {
    UnknownBroadcast,
    BroadcastEnded,
    BadToken,
    NotACommenter,
}

/// The control server.
pub struct ControlServer {
    next_id: u64,
    rtmp_slots: u64,
    rng: SmallRng,
    broadcasts: HashMap<BroadcastId, BroadcastState>,
    live: Vec<BroadcastId>,
    telemetry: Telemetry,
    c_creates: CounterId,
    c_joins_rtmp: CounterId,
    c_joins_hls: CounterId,
    g_live: GaugeId,
}

impl ControlServer {
    /// A server admitting `rtmp_slots` early viewers per broadcast.
    pub fn new(rng: SmallRng, rtmp_slots: u64) -> Self {
        ControlServer {
            next_id: 1,
            rtmp_slots,
            rng,
            broadcasts: HashMap::new(),
            live: Vec::new(),
            telemetry: Telemetry::disabled(),
            c_creates: CounterId::INERT,
            c_joins_rtmp: CounterId::INERT,
            c_joins_hls: CounterId::INERT,
            g_live: GaugeId::INERT,
        }
    }

    /// Attaches telemetry: admission counters, a live-broadcast gauge, and
    /// `JoinStarted` / `HandoffToHls` trace events.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.c_creates = telemetry.counter("control.broadcasts_created");
        self.c_joins_rtmp = telemetry.counter("control.joins_rtmp");
        self.c_joins_hls = telemetry.counter("control.joins_hls");
        self.g_live = telemetry.gauge("control.live_broadcasts");
        self.telemetry = telemetry.clone();
    }

    /// Creates a broadcast for `user` at `location`: assigns the nearest
    /// Wowza datacenter (§5.3 geolocation optimization #1), mints a token
    /// and both stream URLs.
    pub fn create_broadcast(
        &mut self,
        now: SimTime,
        user: UserId,
        location: &GeoPoint,
    ) -> CreateGrant {
        let id = BroadcastId(self.next_id);
        self.next_id += 1;
        let wowza = datacenters::nearest(Provider::Wowza, location);
        let token = token_from_word(self.rng.gen());
        self.broadcasts.insert(
            id,
            BroadcastState {
                broadcaster: user,
                token: token.clone(),
                wowza_dc: wowza.id,
                started: now,
                ended: None,
                rtmp_viewers: 0,
                hls_viewers: 0,
                commenters: HashSet::new(),
                hearts: 0,
                comments: 0,
            },
        );
        self.live.push(id);
        self.telemetry.add(self.c_creates, 1);
        self.telemetry
            .set_gauge(self.g_live, self.live.len() as i64);
        CreateGrant {
            id,
            token,
            wowza_dc: wowza.id,
            rtmp_url: StreamUrl {
                scheme: Scheme::Rtmp,
                dc: wowza.id.0,
                broadcast_id: id.0,
            },
            hls_url: StreamUrl {
                scheme: Scheme::Hls,
                dc: u16::MAX, // resolved per-viewer by anycast at join time
                broadcast_id: id.0,
            },
        }
    }

    /// Admits a viewer at `now`: the first `rtmp_slots` get RTMP + comment
    /// rights, later arrivals get HLS only. The HLS URL's datacenter is
    /// the POP nearest the viewer (IP anycast).
    pub fn join(
        &mut self,
        now: SimTime,
        broadcast: BroadcastId,
        viewer: UserId,
        viewer_location: &GeoPoint,
    ) -> Result<JoinGrant, ControlError> {
        let state = self
            .broadcasts
            .get_mut(&broadcast)
            .ok_or(ControlError::UnknownBroadcast)?;
        if state.ended.is_some() {
            return Err(ControlError::BroadcastEnded);
        }
        let pop = datacenters::nearest(Provider::Fastly, viewer_location);
        let hls_url = StreamUrl {
            scheme: Scheme::Hls,
            dc: pop.id.0,
            broadcast_id: broadcast.0,
        };
        let rtmp = state.rtmp_viewers < self.rtmp_slots;
        self.telemetry.emit(
            now.as_micros(),
            TraceEvent::JoinStarted {
                broadcast: broadcast.0,
                viewer: viewer.0,
                rtmp,
            },
        );
        self.telemetry.emit(
            now.as_micros(),
            TraceEvent::SpanOpen {
                id: viewer_session_span(broadcast.0, viewer.0),
                parent: broadcast_span(broadcast.0),
                kind: SpanKind::ViewerSession,
                broadcast: broadcast.0,
                subject: viewer.0,
                site: pop.id.0,
            },
        );
        if rtmp {
            state.rtmp_viewers += 1;
            state.commenters.insert(viewer);
            self.telemetry.add(self.c_joins_rtmp, 1);
            Ok(JoinGrant {
                rtmp: Some(state.wowza_dc),
                hls_url,
                can_comment: true,
            })
        } else {
            state.hls_viewers += 1;
            self.telemetry.add(self.c_joins_hls, 1);
            self.telemetry.emit(
                now.as_micros(),
                TraceEvent::HandoffToHls {
                    broadcast: broadcast.0,
                    viewer: viewer.0,
                    rtmp_viewers: state.rtmp_viewers,
                },
            );
            Ok(JoinGrant {
                rtmp: None,
                hls_url,
                can_comment: false,
            })
        }
    }

    /// Records a heart (any viewer may send one).
    pub fn record_heart(&mut self, broadcast: BroadcastId) -> Result<(), ControlError> {
        let state = self
            .broadcasts
            .get_mut(&broadcast)
            .ok_or(ControlError::UnknownBroadcast)?;
        state.hearts += 1;
        Ok(())
    }

    /// Records a comment, enforcing the commenter cap.
    pub fn record_comment(
        &mut self,
        broadcast: BroadcastId,
        viewer: UserId,
    ) -> Result<(), ControlError> {
        let state = self
            .broadcasts
            .get_mut(&broadcast)
            .ok_or(ControlError::UnknownBroadcast)?;
        if !state.commenters.contains(&viewer) {
            return Err(ControlError::NotACommenter);
        }
        state.comments += 1;
        Ok(())
    }

    /// Ends a broadcast (authenticated by token). Returns the Wowza
    /// datacenter that hosted it so callers can tear down the ingest side
    /// without a second lookup.
    pub fn end_broadcast(
        &mut self,
        now: SimTime,
        broadcast: BroadcastId,
        token: &str,
    ) -> Result<DatacenterId, ControlError> {
        let state = self
            .broadcasts
            .get_mut(&broadcast)
            .ok_or(ControlError::UnknownBroadcast)?;
        if state.token != token {
            return Err(ControlError::BadToken);
        }
        if state.ended.is_some() {
            return Err(ControlError::BroadcastEnded);
        }
        state.ended = Some(now);
        let wowza_dc = state.wowza_dc;
        self.live.retain(|&b| b != broadcast);
        self.telemetry
            .set_gauge(self.g_live, self.live.len() as i64);
        Ok(wowza_dc)
    }

    /// The global list: up to [`GLOBAL_LIST_SAMPLE`] random live
    /// broadcasts, freshly sampled per query (which is why the crawler
    /// needs many accounts polling in parallel to see everything).
    pub fn global_list(&mut self) -> Vec<BroadcastSummary> {
        let n = self.live.len().min(GLOBAL_LIST_SAMPLE);
        // Partial Fisher-Yates over a scratch copy: unbiased sample
        // without replacement.
        let mut scratch = self.live.clone();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let j = self.rng.gen_range(i..scratch.len());
            scratch.swap(i, j);
            let id = scratch[i];
            let state = &self.broadcasts[&id];
            out.push(BroadcastSummary {
                broadcast_id: id.0,
                broadcaster_id: state.broadcaster.0,
                started_ts_us: state.started.as_micros(),
            });
        }
        out
    }

    /// Number of currently live broadcasts.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Read access to a broadcast's control-plane state.
    pub fn broadcast(&self, id: BroadcastId) -> Option<&BroadcastState> {
        self.broadcasts.get(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn server(slots: u64) -> ControlServer {
        ControlServer::new(SmallRng::seed_from_u64(9), slots)
    }

    fn sf() -> GeoPoint {
        GeoPoint::new(37.77, -122.42)
    }

    #[test]
    fn create_assigns_nearest_wowza_and_unique_tokens() {
        let mut c = server(100);
        let g1 = c.create_broadcast(SimTime::ZERO, UserId(1), &sf());
        let g2 = c.create_broadcast(SimTime::ZERO, UserId(2), &sf());
        assert_eq!(g1.id, BroadcastId(1));
        assert_eq!(g2.id, BroadcastId(2));
        assert_ne!(g1.token, g2.token);
        // SF broadcaster → San Jose Wowza (dc 1).
        assert_eq!(datacenters::datacenter(g1.wowza_dc).city, "San Jose");
        assert_eq!(g1.rtmp_url.scheme, Scheme::Rtmp);
        assert_eq!(g1.rtmp_url.dc, g1.wowza_dc.0);
        assert_eq!(c.live_count(), 2);
    }

    #[test]
    fn first_n_viewers_get_rtmp_and_comment_rights() {
        let mut c = server(3);
        let g = c.create_broadcast(SimTime::ZERO, UserId(1), &sf());
        for v in 0..3 {
            let grant = c.join(SimTime::ZERO, g.id, UserId(100 + v), &sf()).unwrap();
            assert!(grant.rtmp.is_some(), "viewer {v} should get RTMP");
            assert!(grant.can_comment);
        }
        let late = c.join(SimTime::ZERO, g.id, UserId(999), &sf()).unwrap();
        assert!(late.rtmp.is_none(), "4th viewer is handed to HLS");
        assert!(!late.can_comment);
        let state = c.broadcast(g.id).unwrap();
        assert_eq!(state.rtmp_viewers, 3);
        assert_eq!(state.hls_viewers, 1);
    }

    #[test]
    fn hls_url_uses_viewers_nearest_pop() {
        let mut c = server(0); // force HLS for everyone
        let g = c.create_broadcast(SimTime::ZERO, UserId(1), &sf());
        let tokyo_viewer = GeoPoint::new(35.68, 139.65);
        let grant = c
            .join(SimTime::ZERO, g.id, UserId(2), &tokyo_viewer)
            .unwrap();
        assert_eq!(
            datacenters::datacenter(DatacenterId(grant.hls_url.dc)).city,
            "Tokyo"
        );
    }

    #[test]
    fn comment_cap_is_enforced() {
        let mut c = server(1);
        let g = c.create_broadcast(SimTime::ZERO, UserId(1), &sf());
        c.join(SimTime::ZERO, g.id, UserId(10), &sf()).unwrap(); // commenter
        c.join(SimTime::ZERO, g.id, UserId(11), &sf()).unwrap(); // HLS, not a commenter
        assert!(c.record_comment(g.id, UserId(10)).is_ok());
        assert_eq!(
            c.record_comment(g.id, UserId(11)),
            Err(ControlError::NotACommenter)
        );
        assert!(c.record_heart(g.id).is_ok()); // hearts are for everyone
        let s = c.broadcast(g.id).unwrap();
        assert_eq!((s.comments, s.hearts), (1, 1));
    }

    #[test]
    fn ending_requires_the_token_and_stops_joins() {
        let mut c = server(10);
        let g = c.create_broadcast(SimTime::ZERO, UserId(1), &sf());
        assert_eq!(
            c.end_broadcast(SimTime::from_secs(9), g.id, "wrong"),
            Err(ControlError::BadToken)
        );
        c.end_broadcast(SimTime::from_secs(10), g.id, &g.token)
            .unwrap();
        assert_eq!(c.live_count(), 0);
        assert_eq!(
            c.join(SimTime::ZERO, g.id, UserId(5), &sf()),
            Err(ControlError::BroadcastEnded)
        );
        assert_eq!(
            c.end_broadcast(SimTime::from_secs(11), g.id, &g.token),
            Err(ControlError::BroadcastEnded)
        );
    }

    #[test]
    fn global_list_samples_fifty_without_replacement() {
        let mut c = server(100);
        for u in 0..200 {
            c.create_broadcast(SimTime::ZERO, UserId(u), &sf());
        }
        let list = c.global_list();
        assert_eq!(list.len(), GLOBAL_LIST_SAMPLE);
        let distinct: std::collections::HashSet<u64> =
            list.iter().map(|s| s.broadcast_id).collect();
        assert_eq!(distinct.len(), GLOBAL_LIST_SAMPLE, "sample has duplicates");
    }

    #[test]
    fn global_list_is_random_across_queries() {
        let mut c = server(100);
        for u in 0..500 {
            c.create_broadcast(SimTime::ZERO, UserId(u), &sf());
        }
        let a: std::collections::HashSet<u64> =
            c.global_list().iter().map(|s| s.broadcast_id).collect();
        let b: std::collections::HashSet<u64> =
            c.global_list().iter().map(|s| s.broadcast_id).collect();
        assert_ne!(a, b, "two queries returned the identical sample");
    }

    #[test]
    fn global_list_returns_all_when_few_are_live() {
        let mut c = server(100);
        for u in 0..7 {
            c.create_broadcast(SimTime::ZERO, UserId(u), &sf());
        }
        assert_eq!(c.global_list().len(), 7);
    }

    #[test]
    fn unknown_broadcast_errors() {
        let mut c = server(100);
        assert_eq!(
            c.join(SimTime::ZERO, BroadcastId(404), UserId(1), &sf()),
            Err(ControlError::UnknownBroadcast)
        );
        assert_eq!(
            c.record_heart(BroadcastId(404)),
            Err(ControlError::UnknownBroadcast)
        );
    }
}
