//! Identifier newtypes shared across the delivery system.

use std::fmt;

/// A broadcast identifier. Periscope assigned these sequentially during
/// the study window (the paper used that to count total users); so do we.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BroadcastId(pub u64);

impl fmt::Display for BroadcastId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bcast/{}", self.0)
    }
}

/// A registered user identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct UserId(pub u64);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user/{}", self.0)
    }
}

/// Generates the unguessable broadcast token from an RNG word — 16 hex
/// chars. Its secrecy is what the control plane protects (HTTPS) and the
/// RTMP path leaks (§7).
pub fn token_from_word(word: u64) -> String {
    format!("{word:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_readably() {
        assert_eq!(BroadcastId(42).to_string(), "bcast/42");
        assert_eq!(UserId(7).to_string(), "user/7");
    }

    #[test]
    fn tokens_are_sixteen_hex_chars() {
        let t = token_from_word(0xDEAD_BEEF);
        assert_eq!(t.len(), 16);
        assert!(t.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(token_from_word(0), "0000000000000000");
        assert_ne!(token_from_word(1), token_from_word(2));
    }
}
