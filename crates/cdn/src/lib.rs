//! # livescope-cdn — the livestreaming delivery system under study
//!
//! A from-scratch implementation of the infrastructure the IMC'16 paper
//! reverse-engineered (Fig 8): a **control server** that issues broadcast
//! tokens and stream URLs and keeps the global broadcast list; **Wowza**
//! ingest datacenters speaking the RTMP-shaped push protocol; **Fastly**
//! edge POPs serving HLS chunklists and chunks with origin-pull-on-first-
//! poll and co-located-gateway replication; and a **PubNub**-style message
//! bus for hearts and comments.
//!
//! Every server is a *pure state machine*: methods take "now" plus an
//! input and return typed outcomes (deliveries with sampled delays,
//! completed chunks, poll results). The experiment orchestrator in
//! `livescope-core` feeds those outcomes into the discrete-event
//! scheduler; the servers themselves never touch it, which keeps each
//! mechanism — chunking, handoff at 100 viewers, chunklist expiry, gateway
//! replication — independently testable.
//!
//! Mechanisms reproduced, with their paper anchor:
//!
//! * RTMP persistent sessions with server-side **push** per ~40 ms frame
//!   (§4.1), vs HLS **poll** per 2–2.8 s (§5.2);
//! * chunking at 3 s (>85.9% of broadcasts, §5.2);
//! * the first ~100 viewers get RTMP + comment rights; later arrivals are
//!   handed to HLS (§1, §4.1);
//! * chunk replication Wowza → co-located Fastly gateway → other POPs,
//!   triggered by the first viewer poll after chunklist expiry (§4.2,
//!   §5.3);
//! * nearest-datacenter assignment for broadcasters and IP-anycast nearest
//!   POP for HLS viewers (§5.3);
//! * plaintext-token ingest authentication — the §7 vulnerability — plus
//!   an optional frame-verifier hook where the §7.2 defense plugs in.

#![forbid(unsafe_code)]

pub mod api;
pub mod chunker;
pub mod cluster;
pub mod control;
pub mod fanout;
pub mod fastly;
pub mod ids;
pub mod meerkat;
pub mod pubnub;
pub mod wowza;

pub use api::ControlApi;
pub use chunker::{Chunker, ReadyChunk};
pub use cluster::{CdnError, Cluster};
pub use control::ControlServer;
pub use fanout::{run_fanout, FanoutConfig, FanoutReport};
pub use fastly::{FastlyPop, FetchPlan};
pub use ids::{BroadcastId, UserId};
pub use meerkat::MeerkatServer;
pub use pubnub::PubNub;
pub use wowza::WowzaServer;
