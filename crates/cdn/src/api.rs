//! The control plane's wire front door: sealed request in, sealed
//! response out.
//!
//! Clients never call [`crate::ControlServer`] methods directly in the
//! real system — they POST encrypted blobs over HTTPS. This module
//! provides that boundary: each client session holds a key (established
//! out of band, as TLS would), requests arrive as
//! [`livescope_proto::control::Sealed`] envelopes, and the §7 story falls
//! out naturally — everything here is opaque on-path, while the RTMP leg
//! the *same tokens* later travel is not.

use std::collections::HashMap;

use livescope_net::geo::GeoPoint;
use livescope_proto::control::{
    BroadcastSummary, ControlRequest, ControlResponse, Scheme, Sealed, StreamUrl,
};
use livescope_sim::SimTime;

use crate::control::ControlError;
use crate::ids::{BroadcastId, UserId};
use crate::Cluster;

/// A client's authenticated control-channel session.
#[derive(Clone, Copy, Debug)]
pub struct Session {
    pub user: UserId,
    /// Session key shared with the server (TLS stand-in).
    pub key: u64,
    /// The client's location (a real server derives this from the
    /// connection; we carry it explicitly).
    pub location: GeoPoint,
}

/// The wire-facing control API over a [`Cluster`].
pub struct ControlApi {
    sessions: HashMap<UserId, Session>,
    next_nonce: u64,
    /// Requests that failed to unseal or decode (attack observability).
    pub rejected_requests: u64,
}

impl ControlApi {
    /// An API with no sessions yet.
    pub fn new() -> Self {
        ControlApi {
            sessions: HashMap::new(),
            next_nonce: 1,
            rejected_requests: 0,
        }
    }

    /// Establishes a client session (models the TLS handshake).
    pub fn open_session(&mut self, session: Session) {
        self.sessions.insert(session.user, session);
    }

    /// Seals a request on behalf of a client (client-side helper).
    pub fn seal_request(&mut self, user: UserId, request: &ControlRequest) -> Option<Sealed> {
        let session = self.sessions.get(&user)?;
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        Some(Sealed::seal(&request.encode(), session.key, nonce))
    }

    /// Handles one sealed request from `user`, applying it to `cluster`
    /// and returning the sealed response.
    pub fn handle(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        user: UserId,
        envelope: &Sealed,
    ) -> Sealed {
        let Some(session) = self.sessions.get(&user).copied() else {
            self.rejected_requests += 1;
            return self.seal_error(0, "no session");
        };
        let request = match envelope
            .unseal(session.key)
            .and_then(ControlRequest::decode)
        {
            Ok(req) => req,
            Err(_) => {
                self.rejected_requests += 1;
                let nonce = self.bump_nonce();
                return Sealed::seal(
                    &ControlResponse::Error("unreadable request".into()).encode(),
                    session.key,
                    nonce,
                );
            }
        };
        let response = self.dispatch(cluster, now, &session, request);
        let nonce = self.bump_nonce();
        Sealed::seal(&response.encode(), session.key, nonce)
    }

    fn bump_nonce(&mut self) -> u64 {
        let n = self.next_nonce;
        self.next_nonce += 1;
        n
    }

    fn seal_error(&mut self, key: u64, msg: &str) -> Sealed {
        let nonce = self.bump_nonce();
        Sealed::seal(&ControlResponse::Error(msg.into()).encode(), key, nonce)
    }

    fn dispatch(
        &mut self,
        cluster: &mut Cluster,
        now: SimTime,
        session: &Session,
        request: ControlRequest,
    ) -> ControlResponse {
        match request {
            ControlRequest::CreateBroadcast { user_id } => {
                if user_id != session.user.0 {
                    return ControlResponse::Error("user mismatch".into());
                }
                let grant = cluster.create_broadcast(now, session.user, &session.location);
                ControlResponse::Created {
                    broadcast_id: grant.id.0,
                    token: grant.token,
                    rtmp_url: grant.rtmp_url,
                    hls_url: grant.hls_url,
                }
            }
            ControlRequest::Join {
                broadcast_id,
                user_id,
            } => {
                if user_id != session.user.0 {
                    return ControlResponse::Error("user mismatch".into());
                }
                match cluster.join_viewer(
                    now,
                    BroadcastId(broadcast_id),
                    session.user,
                    &session.location,
                ) {
                    Ok(grant) => ControlResponse::JoinInfo {
                        rtmp_url: grant.rtmp.map(|dc| StreamUrl {
                            scheme: Scheme::Rtmp,
                            dc: dc.0,
                            broadcast_id,
                        }),
                        hls_url: grant.hls_url,
                        can_comment: grant.can_comment,
                    },
                    Err(e) => ControlResponse::Error(control_error_text(e).into()),
                }
            }
            ControlRequest::EndBroadcast {
                broadcast_id,
                token,
            } => match cluster.end_broadcast(now, BroadcastId(broadcast_id), &token) {
                Ok(()) => ControlResponse::Ok,
                Err(e) => ControlResponse::Error(e.as_str().into()),
            },
            ControlRequest::GlobalList => {
                let list: Vec<BroadcastSummary> = cluster.control.global_list();
                ControlResponse::GlobalList(list)
            }
        }
    }
}

impl Default for ControlApi {
    fn default() -> Self {
        Self::new()
    }
}

fn control_error_text(e: ControlError) -> &'static str {
    match e {
        ControlError::UnknownBroadcast => "unknown broadcast",
        ControlError::BroadcastEnded => "broadcast ended",
        ControlError::BadToken => "bad token",
        ControlError::NotACommenter => "not a commenter",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livescope_sim::RngPool;
    use livescope_sim::SimDuration;

    fn setup() -> (Cluster, ControlApi) {
        let cluster = Cluster::new(&RngPool::new(4), SimDuration::from_secs(3), 100);
        let mut api = ControlApi::new();
        api.open_session(Session {
            user: UserId(1),
            key: 0xA11CE,
            location: GeoPoint::new(37.77, -122.42),
        });
        api.open_session(Session {
            user: UserId(2),
            key: 0xB0B,
            location: GeoPoint::new(51.51, -0.13),
        });
        (cluster, api)
    }

    fn roundtrip(
        cluster: &mut Cluster,
        api: &mut ControlApi,
        user: UserId,
        key: u64,
        request: ControlRequest,
    ) -> ControlResponse {
        let sealed = api.seal_request(user, &request).expect("session exists");
        let response = api.handle(cluster, SimTime::from_secs(1), user, &sealed);
        ControlResponse::decode(response.unseal(key).expect("client can read")).unwrap()
    }

    #[test]
    fn create_join_end_over_the_wire() {
        let (mut cluster, mut api) = setup();
        let created = roundtrip(
            &mut cluster,
            &mut api,
            UserId(1),
            0xA11CE,
            ControlRequest::CreateBroadcast { user_id: 1 },
        );
        let (id, token) = match created {
            ControlResponse::Created {
                broadcast_id,
                token,
                rtmp_url,
                ..
            } => {
                assert_eq!(rtmp_url.scheme, Scheme::Rtmp);
                (broadcast_id, token)
            }
            other => panic!("{other:?}"),
        };
        let joined = roundtrip(
            &mut cluster,
            &mut api,
            UserId(2),
            0xB0B,
            ControlRequest::Join {
                broadcast_id: id,
                user_id: 2,
            },
        );
        match joined {
            ControlResponse::JoinInfo {
                rtmp_url,
                can_comment,
                ..
            } => {
                assert!(rtmp_url.is_some(), "early viewer gets RTMP");
                assert!(can_comment);
            }
            other => panic!("{other:?}"),
        }
        let ended = roundtrip(
            &mut cluster,
            &mut api,
            UserId(1),
            0xA11CE,
            ControlRequest::EndBroadcast {
                broadcast_id: id,
                token,
            },
        );
        assert_eq!(ended, ControlResponse::Ok);
        assert_eq!(cluster.control.live_count(), 0);
    }

    #[test]
    fn global_list_travels_sealed() {
        let (mut cluster, mut api) = setup();
        for _ in 0..3 {
            roundtrip(
                &mut cluster,
                &mut api,
                UserId(1),
                0xA11CE,
                ControlRequest::CreateBroadcast { user_id: 1 },
            );
        }
        let list = roundtrip(
            &mut cluster,
            &mut api,
            UserId(2),
            0xB0B,
            ControlRequest::GlobalList,
        );
        match list {
            ControlResponse::GlobalList(items) => assert_eq!(items.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn impersonation_is_refused() {
        let (mut cluster, mut api) = setup();
        // User 2 tries to create a broadcast claiming to be user 1.
        let resp = roundtrip(
            &mut cluster,
            &mut api,
            UserId(2),
            0xB0B,
            ControlRequest::CreateBroadcast { user_id: 1 },
        );
        assert!(matches!(resp, ControlResponse::Error(_)));
        assert_eq!(cluster.control.live_count(), 0);
    }

    #[test]
    fn tampered_envelope_is_rejected_and_counted() {
        let (mut cluster, mut api) = setup();
        let sealed = api
            .seal_request(UserId(1), &ControlRequest::GlobalList)
            .unwrap();
        let mut wire = sealed.wire().to_vec();
        let last = wire.len() - 1;
        wire[last] ^= 1;
        let tampered = Sealed::from_wire(bytes::Bytes::from(wire));
        let resp = api.handle(&mut cluster, SimTime::ZERO, UserId(1), &tampered);
        assert_eq!(api.rejected_requests, 1);
        // The error response is still readable by the legitimate client.
        let plain = resp.unseal(0xA11CE).unwrap();
        assert!(matches!(
            ControlResponse::decode(plain).unwrap(),
            ControlResponse::Error(_)
        ));
    }

    #[test]
    fn wrong_key_cannot_forge_requests() {
        let (mut cluster, mut api) = setup();
        // An attacker seals a request under a guessed key.
        let forged = Sealed::seal(
            &ControlRequest::CreateBroadcast { user_id: 1 }.encode(),
            0xDEAD,
            99,
        );
        let _ = api.handle(&mut cluster, SimTime::ZERO, UserId(1), &forged);
        assert_eq!(api.rejected_requests, 1);
        assert_eq!(cluster.control.live_count(), 0);
    }

    #[test]
    fn sessionless_users_get_nothing() {
        let (mut cluster, mut api) = setup();
        let forged = Sealed::seal(&ControlRequest::GlobalList.encode(), 0x123, 1);
        let _ = api.handle(&mut cluster, SimTime::ZERO, UserId(99), &forged);
        assert_eq!(api.rejected_requests, 1);
        assert!(api
            .seal_request(UserId(99), &ControlRequest::GlobalList)
            .is_none());
    }
}
