//! The Fastly-style edge POP: chunklist cache, origin pull on first poll,
//! and chunk serving.
//!
//! The timing diagram of Fig 10(b) is implemented literally: a fresh chunk
//! on Wowza (⑦) is *not* proactively copied — the first viewer poll after
//! it becomes ready (⑨) triggers the POP's origin fetch (⑩), the chunk
//! lands in the edge cache after the transfer delay (⑪), and only polls
//! arriving after that instant see it in the chunklist (⑭). The
//! Wowza2Fastly delay the paper measures is exactly `⑪ − ⑦`.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use livescope_net::datacenters::DatacenterId;
use livescope_proto::hls::{Chunk, ChunkList};
use livescope_sim::{SimDuration, SimTime};
use livescope_telemetry::span::{chunk_seal_span, origin_fetch_span};
use livescope_telemetry::{CounterId, HistogramId, SpanKind, Telemetry, TraceEvent};

use crate::chunker::ReadyChunk;
use crate::ids::BroadcastId;

/// Sliding-window length of the live chunklist (entries advertised).
pub const LIVE_WINDOW: usize = 6;

/// Edge-side work counters (the HLS half of Fig 14).
#[derive(Clone, Copy, Debug, Default)]
pub struct EdgeWork {
    /// Chunklist polls answered.
    pub polls_served: u64,
    /// Origin fetches initiated.
    pub origin_fetches: u64,
    /// Chunks served to viewers.
    pub chunks_served: u64,
    /// Chunk bytes served to viewers.
    pub bytes_served: u64,
}

/// The set of origin chunks one poll decides to pull, batched into a
/// single gateway-routed transfer. The cluster samples *one* delay for
/// the whole plan, so the §5.3 coordination overhead is paid exactly once
/// per poll no matter how many chunks became ready since the last one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FetchPlan {
    /// Sequence numbers pulled, ascending.
    pub seqs: Vec<u64>,
    /// Total payload bytes across the batch (≥ 1 so transfer-time models
    /// never divide by zero).
    pub total_bytes: usize,
}

struct CachedChunk {
    available_at: SimTime,
    /// The origin's wire encoding, shared by refcount: the same `Bytes`
    /// allocation travels Wowza → every POP → every viewer download, so a
    /// serve is a pointer bump — the cheapness that makes HLS scale
    /// (Fig 14).
    encoded: bytes::Bytes,
    chunk: Arc<Chunk>,
}

#[derive(Default)]
struct EdgeCache {
    chunks: BTreeMap<u64, CachedChunk>,
    /// Highest origin seq for which a fetch was already initiated.
    fetched_through: Option<u64>,
}

/// One edge POP.
pub struct FastlyPop {
    dc: DatacenterId,
    caches: HashMap<BroadcastId, EdgeCache>,
    /// Cumulative work counters.
    pub work: EdgeWork,
    telemetry: Telemetry,
    c_polls: CounterId,
    c_poll_hits: CounterId,
    c_poll_misses: CounterId,
    c_origin_fetches: CounterId,
    c_chunks_served: CounterId,
    h_fetch_delay_us: HistogramId,
}

/// Result of a chunklist poll.
#[derive(Clone, Debug)]
pub struct PollResponse {
    /// The chunklist as served (only chunks already cached locally).
    pub chunklist: ChunkList,
    /// Number of origin fetches this poll triggered (0 on a pure cache
    /// hit; the paper's crawler uses high-frequency polls precisely to be
    /// the poll that triggers the fetch).
    pub fetches_started: usize,
}

impl FastlyPop {
    /// A POP at `dc`.
    pub fn new(dc: DatacenterId) -> Self {
        FastlyPop {
            dc,
            caches: HashMap::new(),
            work: EdgeWork::default(),
            telemetry: Telemetry::disabled(),
            c_polls: CounterId::INERT,
            c_poll_hits: CounterId::INERT,
            c_poll_misses: CounterId::INERT,
            c_origin_fetches: CounterId::INERT,
            c_chunks_served: CounterId::INERT,
            h_fetch_delay_us: HistogramId::INERT,
        }
    }

    /// Attaches telemetry: edge counters, an origin-fetch delay histogram,
    /// and `PollHit`/`PollMiss`/`OriginPull` trace events.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.c_polls = telemetry.counter("fastly.polls_served");
        self.c_poll_hits = telemetry.counter("fastly.poll_hits");
        self.c_poll_misses = telemetry.counter("fastly.poll_misses");
        self.c_origin_fetches = telemetry.counter("fastly.origin_fetches");
        self.c_chunks_served = telemetry.counter("fastly.chunks_served");
        self.h_fetch_delay_us = telemetry.histogram("fastly.fetch_delay_us");
        self.telemetry = telemetry.clone();
    }

    /// The POP's datacenter.
    pub fn datacenter(&self) -> DatacenterId {
        self.dc
    }

    /// Serves a chunklist poll at `now`.
    ///
    /// `origin` is the broadcast's chunk store on its Wowza server. All
    /// origin chunks that are ready but not yet requested are batched into
    /// one [`FetchPlan`] initiated by *this* poll; `fetch_delay` samples
    /// the origin→edge transfer time for the whole batch (the cluster
    /// supplies the co-located-gateway routing), so every chunk in the
    /// plan lands at the same instant. `fetch_delay` is not called on
    /// fetch-free polls.
    pub fn poll(
        &mut self,
        now: SimTime,
        broadcast: BroadcastId,
        origin: &[ReadyChunk],
        fetch_delay: impl FnOnce(&FetchPlan) -> SimDuration,
    ) -> PollResponse {
        self.work.polls_served += 1;
        self.telemetry.add(self.c_polls, 1);
        let cache = self.caches.entry(broadcast).or_default();
        let mut plan = FetchPlan {
            seqs: Vec::new(),
            total_bytes: 0,
        };
        // `origin` is seq-ascending (chunkers emit in order, and
        // `FetchPlan::seqs` documents ascending), so everything at or
        // below the fetch watermark is a contiguous prefix — skip it
        // instead of re-scanning the whole store every poll.
        let unfetched_from = cache.fetched_through.map_or(0, |through| {
            origin.partition_point(|ready| ready.chunk.seq <= through)
        });
        let mut picked: Vec<usize> = Vec::new();
        for (i, ready) in origin.iter().enumerate().skip(unfetched_from) {
            if ready.ready_at > now {
                // Origin-side future chunks are invisible: the paper's
                // chunklist-expiry notification tells the edge *that*
                // something is new, never content ahead of time.
                continue;
            }
            plan.seqs.push(ready.chunk.seq);
            plan.total_bytes += ready.chunk.payload_bytes();
            picked.push(i);
        }
        let fetches_started = plan.seqs.len();
        if fetches_started > 0 {
            plan.total_bytes = plan.total_bytes.max(1);
            let delay = fetch_delay(&plan);
            let available_at = now + delay;
            let batch = fetches_started as u32;
            for &i in &picked {
                let ready = &origin[i];
                cache.chunks.insert(
                    ready.chunk.seq,
                    CachedChunk {
                        available_at,
                        encoded: ready.encoded.clone(),
                        chunk: Arc::clone(&ready.chunk),
                    },
                );
                self.telemetry.emit(
                    now.as_micros(),
                    TraceEvent::OriginPull {
                        broadcast: broadcast.0,
                        pop: self.dc.0,
                        seq: ready.chunk.seq,
                        origin_ready_us: ready.ready_at.as_micros(),
                        available_at_us: available_at.as_micros(),
                        batch,
                    },
                );
                let span = origin_fetch_span(broadcast.0, ready.chunk.seq, self.dc.0);
                self.telemetry.emit(
                    now.as_micros(),
                    TraceEvent::SpanOpen {
                        id: span,
                        parent: chunk_seal_span(broadcast.0, ready.chunk.seq),
                        kind: SpanKind::OriginFetch,
                        broadcast: broadcast.0,
                        subject: ready.chunk.seq,
                        site: self.dc.0,
                    },
                );
                self.telemetry.emit(
                    available_at.as_micros(),
                    TraceEvent::SpanClose {
                        id: span,
                        kind: SpanKind::OriginFetch,
                    },
                );
            }
            cache.fetched_through = plan.seqs.last().copied();
            self.work.origin_fetches += fetches_started as u64;
            self.telemetry
                .add(self.c_origin_fetches, fetches_started as u64);
            self.telemetry
                .record(self.h_fetch_delay_us, delay.as_micros());
        }
        // The chunklist advertises the newest LIVE_WINDOW available
        // chunks, so walk the cache from the newest seq and stop once
        // the window is full — visiting ~LIVE_WINDOW entries plus any
        // still-in-flight stragglers, instead of the whole cache (which
        // grows with stream length) on every poll.
        let mut servable: Vec<&Chunk> = Vec::with_capacity(LIVE_WINDOW);
        for c in cache.chunks.values().rev() {
            if c.available_at <= now {
                servable.push(c.chunk.as_ref());
                if servable.len() == LIVE_WINDOW {
                    break;
                }
            }
        }
        let chunklist = ChunkList::from_chunks(servable, LIVE_WINDOW);
        if chunklist.entries.is_empty() {
            self.telemetry.add(self.c_poll_misses, 1);
            self.telemetry.emit(
                now.as_micros(),
                TraceEvent::PollMiss {
                    broadcast: broadcast.0,
                    pop: self.dc.0,
                },
            );
        } else {
            self.telemetry.add(self.c_poll_hits, 1);
            self.telemetry.emit(
                now.as_micros(),
                TraceEvent::PollHit {
                    broadcast: broadcast.0,
                    pop: self.dc.0,
                    entries: chunklist.entries.len() as u32,
                },
            );
        }
        PollResponse {
            chunklist,
            fetches_started,
        }
    }

    /// Serves one chunk download as wire bytes (None if not yet available
    /// here). The serve is a refcount bump on the shared container — the
    /// same allocation the origin encoded at chunk close.
    pub fn serve_chunk(
        &mut self,
        now: SimTime,
        broadcast: BroadcastId,
        seq: u64,
    ) -> Option<bytes::Bytes> {
        let cached = self.caches.get(&broadcast)?.chunks.get(&seq)?;
        if cached.available_at > now {
            return None;
        }
        let wire = cached.encoded.clone();
        self.work.chunks_served += 1;
        self.work.bytes_served += wire.len() as u64;
        self.telemetry.add(self.c_chunks_served, 1);
        Some(wire)
    }

    /// Serves one chunk download as a shared decoded chunk (convenience
    /// for clients). Like [`FastlyPop::serve_chunk`], this never copies:
    /// the returned `Arc` points at the origin's chunk.
    pub fn get_chunk(
        &mut self,
        now: SimTime,
        broadcast: BroadcastId,
        seq: u64,
    ) -> Option<Arc<Chunk>> {
        let cached = self.caches.get(&broadcast)?.chunks.get(&seq)?;
        if cached.available_at > now {
            return None;
        }
        let chunk = Arc::clone(&cached.chunk);
        self.work.chunks_served += 1;
        self.work.bytes_served += cached.encoded.len() as u64;
        self.telemetry.add(self.c_chunks_served, 1);
        Some(chunk)
    }

    /// When `seq` became (or becomes) available at this POP — the `⑪`
    /// timestamp of the Wowza2Fastly measurement. `None` if no fetch was
    /// ever triggered.
    pub fn availability(&self, broadcast: BroadcastId, seq: u64) -> Option<SimTime> {
        self.caches
            .get(&broadcast)?
            .chunks
            .get(&seq)
            .map(|c| c.available_at)
    }

    /// Drops a broadcast's cache (broadcast ended, TTL expiry).
    pub fn evict(&mut self, broadcast: BroadcastId) {
        self.caches.remove(&broadcast);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use livescope_proto::rtmp::VideoFrame;
    use livescope_sim::SimDuration;

    const B: BroadcastId = BroadcastId(5);

    fn ready_chunk(seq: u64, ready_s: u64) -> ReadyChunk {
        let chunk = Chunk {
            seq,
            start_ts_us: seq * 3_000_000,
            duration_us: 3_000_000,
            frames: vec![VideoFrame::new(
                seq * 75,
                seq * 3_000_000,
                true,
                Bytes::from(vec![1u8; 100]),
            )],
        };
        let encoded = chunk.encode();
        ReadyChunk {
            chunk: Arc::new(chunk),
            encoded,
            ready_at: SimTime::from_secs(ready_s),
        }
    }

    fn fixed_delay(ms: u64) -> impl Fn(&FetchPlan) -> SimDuration + Copy {
        move |_| SimDuration::from_millis(ms)
    }

    #[test]
    fn first_poll_triggers_fetch_but_serves_nothing() {
        let mut pop = FastlyPop::new(DatacenterId(8));
        let origin = vec![ready_chunk(0, 3)];
        let resp = pop.poll(SimTime::from_secs(4), B, &origin, fixed_delay(200));
        assert_eq!(resp.fetches_started, 1);
        assert_eq!(resp.chunklist.entries.len(), 0, "chunk still in flight");
        // The availability timestamp is poll time + transfer.
        assert_eq!(
            pop.availability(B, 0),
            Some(SimTime::from_secs(4) + SimDuration::from_millis(200))
        );
    }

    #[test]
    fn later_poll_sees_the_fetched_chunk_once() {
        let mut pop = FastlyPop::new(DatacenterId(8));
        let origin = vec![ready_chunk(0, 3)];
        let d = fixed_delay(200);
        pop.poll(SimTime::from_secs(4), B, &origin, d);
        let resp = pop.poll(SimTime::from_secs(5), B, &origin, d);
        assert_eq!(resp.fetches_started, 0, "no duplicate fetch");
        assert_eq!(resp.chunklist.entries.len(), 1);
        assert_eq!(resp.chunklist.latest_seq(), Some(0));
    }

    #[test]
    fn future_origin_chunks_are_invisible() {
        let mut pop = FastlyPop::new(DatacenterId(8));
        let origin = vec![ready_chunk(0, 3), ready_chunk(1, 6)];
        let resp = pop.poll(SimTime::from_secs(4), B, &origin, fixed_delay(10));
        assert_eq!(resp.fetches_started, 1, "only the ready chunk fetches");
        assert!(pop.availability(B, 1).is_none());
    }

    #[test]
    fn chunk_download_respects_availability() {
        let mut pop = FastlyPop::new(DatacenterId(8));
        let origin = vec![ready_chunk(0, 3)];
        pop.poll(SimTime::from_secs(4), B, &origin, fixed_delay(500));
        assert!(pop.get_chunk(SimTime::from_millis(4_200), B, 0).is_none());
        let chunk = pop.get_chunk(SimTime::from_millis(4_500), B, 0).unwrap();
        assert_eq!(chunk.seq, 0);
        assert_eq!(pop.work.chunks_served, 1);
        assert!(pop.work.bytes_served >= 100);
        assert!(pop.get_chunk(SimTime::from_secs(5), B, 99).is_none());
    }

    #[test]
    fn chunklist_window_slides() {
        let mut pop = FastlyPop::new(DatacenterId(8));
        let origin: Vec<ReadyChunk> = (0..10).map(|s| ready_chunk(s, 3 * (s + 1))).collect();
        let d = fixed_delay(1);
        let resp = pop.poll(SimTime::from_secs(100), B, &origin, d);
        assert_eq!(resp.fetches_started, 10);
        let resp = pop.poll(SimTime::from_secs(101), B, &origin, d);
        assert_eq!(resp.chunklist.entries.len(), LIVE_WINDOW);
        assert_eq!(resp.chunklist.latest_seq(), Some(9));
        assert_eq!(resp.chunklist.media_sequence, 4);
    }

    #[test]
    fn caches_are_per_broadcast_and_evictable() {
        let mut pop = FastlyPop::new(DatacenterId(8));
        let origin = vec![ready_chunk(0, 1)];
        let d = fixed_delay(1);
        pop.poll(SimTime::from_secs(2), B, &origin, d);
        pop.poll(SimTime::from_secs(2), BroadcastId(99), &[], d);
        assert!(pop.availability(B, 0).is_some());
        assert!(pop.availability(BroadcastId(99), 0).is_none());
        pop.evict(B);
        assert!(pop.availability(B, 0).is_none());
    }

    #[test]
    fn poll_counter_tracks_every_request() {
        let mut pop = FastlyPop::new(DatacenterId(8));
        for i in 0..7 {
            pop.poll(SimTime::from_secs(i), B, &[], fixed_delay(1));
        }
        assert_eq!(pop.work.polls_served, 7);
        assert_eq!(pop.work.origin_fetches, 0);
    }

    #[test]
    fn cached_chunk_shares_the_origin_allocation() {
        // The zero-copy contract: the bytes a viewer downloads ARE the
        // bytes the origin encoded at chunk close — same allocation, no
        // copies anywhere on the poll → download path.
        let mut pop = FastlyPop::new(DatacenterId(8));
        let origin = vec![ready_chunk(0, 3)];
        pop.poll(SimTime::from_secs(4), B, &origin, fixed_delay(1));
        let wire = pop.serve_chunk(SimTime::from_secs(5), B, 0).unwrap();
        assert_eq!(
            wire.as_ref().as_ptr(),
            origin[0].encoded.as_ref().as_ptr(),
            "served bytes must alias the origin encoding"
        );
        let chunk = pop.get_chunk(SimTime::from_secs(5), B, 0).unwrap();
        assert!(
            Arc::ptr_eq(&chunk, &origin[0].chunk),
            "decoded view must alias the origin chunk"
        );
    }

    #[test]
    fn multiple_ready_chunks_batch_into_one_fetch_plan() {
        // Regression pin for the batched-fetch semantics: when several
        // chunks become ready between polls, the next poll issues ONE
        // FetchPlan covering all of them, fetches_started still counts
        // chunks, and every chunk in the batch lands at the same instant.
        let mut pop = FastlyPop::new(DatacenterId(8));
        let origin = vec![ready_chunk(0, 3), ready_chunk(1, 6)];
        let mut plans: Vec<FetchPlan> = Vec::new();
        let resp = pop.poll(SimTime::from_secs(100), B, &origin, |p: &FetchPlan| {
            plans.push(p.clone());
            SimDuration::from_millis(40)
        });
        assert_eq!(resp.fetches_started, 2, "fetches_started counts chunks");
        assert_eq!(
            plans,
            vec![FetchPlan {
                seqs: vec![0, 1],
                total_bytes: 200,
            }],
            "one plan covering the whole batch"
        );
        assert_eq!(pop.work.origin_fetches, 2);
        let expected = SimTime::from_secs(100) + SimDuration::from_millis(40);
        assert_eq!(pop.availability(B, 0), Some(expected));
        assert_eq!(pop.availability(B, 1), Some(expected));

        let resp = pop.poll(SimTime::from_secs(101), B, &origin, |p: &FetchPlan| {
            plans.push(p.clone());
            SimDuration::from_millis(40)
        });
        assert_eq!(resp.fetches_started, 0);
        assert_eq!(plans.len(), 1, "no plan sampled on a fetch-free poll");
    }
}
