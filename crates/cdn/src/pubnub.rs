//! The PubNub-style message channel (Fig 8(c)): hearts and comments travel
//! on a path entirely separate from video, fanned out to channel
//! subscribers with per-subscriber delivery delays.

use std::collections::HashMap;

use rand::rngs::SmallRng;

use livescope_net::Link;
use livescope_proto::message::ChatEvent;
use livescope_sim::{SimDuration, SimTime};
use livescope_telemetry::{CounterId, Telemetry, TraceEvent};

use crate::ids::{BroadcastId, UserId};

/// A message delivery to one subscriber.
#[derive(Clone, Debug)]
pub struct MessageDelivery {
    pub subscriber: UserId,
    pub event: ChatEvent,
    /// `None` when the subscriber's link dropped the message.
    pub delay: Option<SimDuration>,
}

/// The message bus.
#[derive(Default)]
pub struct PubNub {
    channels: HashMap<BroadcastId, Vec<(UserId, Link)>>,
    /// Events accepted for publication.
    pub published: u64,
    /// Deliveries attempted (events × subscribers).
    pub deliveries_attempted: u64,
    telemetry: Telemetry,
    c_published: CounterId,
    c_deliveries: CounterId,
    c_dropped: CounterId,
}

impl PubNub {
    /// An empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches telemetry: publish/delivery/drop counters and a
    /// `CommentFanout` trace event per publish.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.c_published = telemetry.counter("pubnub.published");
        self.c_deliveries = telemetry.counter("pubnub.deliveries");
        self.c_dropped = telemetry.counter("pubnub.dropped");
        self.telemetry = telemetry.clone();
    }

    /// Subscribes `user` to a broadcast's channel over `link`.
    pub fn subscribe(&mut self, broadcast: BroadcastId, user: UserId, link: Link) {
        self.channels
            .entry(broadcast)
            .or_default()
            .push((user, link));
    }

    /// Unsubscribes (no-op if absent).
    pub fn unsubscribe(&mut self, broadcast: BroadcastId, user: UserId) {
        if let Some(subs) = self.channels.get_mut(&broadcast) {
            subs.retain(|(u, _)| *u != user);
        }
    }

    /// Subscriber count for a channel.
    pub fn subscriber_count(&self, broadcast: BroadcastId) -> usize {
        self.channels.get(&broadcast).map_or(0, Vec::len)
    }

    /// Publishes an event to its broadcast channel, fanning out to every
    /// subscriber *including the sender* (Periscope shows your own hearts
    /// back to you via the channel; the experiment code filters if needed).
    pub fn publish(
        &mut self,
        now: SimTime,
        event: ChatEvent,
        rng: &mut SmallRng,
    ) -> Vec<MessageDelivery> {
        self.published += 1;
        self.telemetry.add(self.c_published, 1);
        let wire_len = event.encode().len();
        let Some(subs) = self.channels.get_mut(&BroadcastId(event.broadcast_id)) else {
            self.telemetry.emit(
                now.as_micros(),
                TraceEvent::CommentFanout {
                    broadcast: event.broadcast_id,
                    from_user: event.user_id,
                    receivers: 0,
                },
            );
            return Vec::new();
        };
        let mut out = Vec::with_capacity(subs.len());
        let mut dropped = 0u64;
        for (user, link) in subs.iter_mut() {
            self.deliveries_attempted += 1;
            let delay = link.transmit(rng, now, wire_len).delay();
            dropped += delay.is_none() as u64;
            out.push(MessageDelivery {
                subscriber: *user,
                event: event.clone(),
                delay,
            });
        }
        self.telemetry.add(self.c_deliveries, out.len() as u64);
        self.telemetry.add(self.c_dropped, dropped);
        self.telemetry.emit(
            now.as_micros(),
            TraceEvent::CommentFanout {
                broadcast: event.broadcast_id,
                from_user: event.user_id,
                receivers: out.len() as u32,
            },
        );
        out
    }

    /// Drops a channel (broadcast ended).
    pub fn close_channel(&mut self, broadcast: BroadcastId) {
        self.channels.remove(&broadcast);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livescope_net::geo::GeoPoint;
    use livescope_net::{AccessLink, FaultConfig};
    use livescope_proto::message::EventKind;
    use rand::SeedableRng;

    const B: BroadcastId = BroadcastId(3);

    fn link() -> Link {
        Link::device_path(
            &GeoPoint::new(37.77, -122.42),
            &GeoPoint::new(39.04, -77.49),
            AccessLink::StableWifi,
        )
    }

    fn heart(user: u64) -> ChatEvent {
        ChatEvent {
            broadcast_id: B.0,
            user_id: user,
            ts_us: 1000,
            kind: EventKind::Heart,
        }
    }

    #[test]
    fn publish_fans_out_to_all_subscribers() {
        let mut bus = PubNub::new();
        let mut rng = SmallRng::seed_from_u64(1);
        for u in 0..4 {
            bus.subscribe(B, UserId(u), link());
        }
        let deliveries = bus.publish(SimTime::ZERO, heart(0), &mut rng);
        assert_eq!(deliveries.len(), 4);
        assert!(deliveries.iter().all(|d| d.delay.is_some()));
        assert_eq!(bus.published, 1);
        assert_eq!(bus.deliveries_attempted, 4);
    }

    #[test]
    fn publish_to_empty_channel_is_empty() {
        let mut bus = PubNub::new();
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(bus.publish(SimTime::ZERO, heart(0), &mut rng).is_empty());
        assert_eq!(bus.published, 1);
    }

    #[test]
    fn unsubscribe_and_close_remove_receivers() {
        let mut bus = PubNub::new();
        let mut rng = SmallRng::seed_from_u64(1);
        bus.subscribe(B, UserId(1), link());
        bus.subscribe(B, UserId(2), link());
        bus.unsubscribe(B, UserId(1));
        assert_eq!(bus.subscriber_count(B), 1);
        bus.close_channel(B);
        assert!(bus.publish(SimTime::ZERO, heart(0), &mut rng).is_empty());
    }

    #[test]
    fn lossy_links_drop_some_deliveries() {
        let mut bus = PubNub::new();
        let mut rng = SmallRng::seed_from_u64(2);
        bus.subscribe(
            B,
            UserId(1),
            link().with_faults(FaultConfig {
                drop_chance: 1.0,
                ..FaultConfig::none()
            }),
        );
        let deliveries = bus.publish(SimTime::ZERO, heart(0), &mut rng);
        assert_eq!(deliveries.len(), 1);
        assert!(deliveries[0].delay.is_none());
    }

    #[test]
    fn events_survive_the_trip_intact() {
        let mut bus = PubNub::new();
        let mut rng = SmallRng::seed_from_u64(3);
        bus.subscribe(B, UserId(1), link());
        let comment = ChatEvent {
            broadcast_id: B.0,
            user_id: 42,
            ts_us: 9_000,
            kind: EventKind::Comment("nice puddle".into()),
        };
        let deliveries = bus.publish(SimTime::ZERO, comment.clone(), &mut rng);
        assert_eq!(deliveries[0].event, comment);
    }
}
