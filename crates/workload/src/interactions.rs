//! Hearts and comments per broadcast (Fig 5).
//!
//! Every viewer may send hearts (heavy-tailed per-viewer engagement: most
//! send none, fans hammer the screen — the paper's most-loved broadcast
//! drew 1.35M hearts). Comments come only from the first
//! `COMMENTER_CAP`-style slots (see `livescope-proto`), which is why
//! the paper observes comments "severely constrained" while hearts scale
//! with audience.

use rand::Rng;

use livescope_sim::dist;

use crate::scenario::ScenarioConfig;

/// Interaction totals for one broadcast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interactions {
    /// Hearts sent over the whole broadcast (Fig 5 top).
    pub hearts: u64,
    /// Comments posted over the whole broadcast (Fig 5 bottom).
    pub comments: u64,
}

/// Samples hearts and comments for a broadcast with `viewers` total views
/// and a given duration in seconds.
///
/// Engagement is modelled per broadcast, not per viewer, to stay O(1):
/// hearts ≈ `viewers × rate` where `rate` is lognormal around
/// `hearts_per_viewer` (so some broadcasts are cold, a few are on fire),
/// and comments ≈ `min(viewers, commenter_slots) × lognormal rate`.
pub fn sample_interactions<R: Rng>(
    rng: &mut R,
    config: &ScenarioConfig,
    viewers: u64,
    duration_secs: f64,
) -> Interactions {
    if viewers == 0 {
        return Interactions {
            hearts: 0,
            comments: 0,
        };
    }
    // Longer broadcasts accumulate more interaction, sub-linearly (people
    // drift away): scale by (duration / 3 min)^0.4.
    let duration_scale = (duration_secs / 180.0).max(0.05).powf(0.4);
    let heart_rate = dist::log_normal(rng, (config.hearts_per_viewer).ln(), 1.3);
    let hearts = (viewers as f64 * heart_rate * duration_scale).round() as u64;
    let commenters = viewers.min(config.rtmp_slots);
    let comment_rate = dist::log_normal(rng, config.comments_per_commenter.ln(), 0.9);
    // Not every admitted viewer comments.
    let active = dist::binomial(rng, commenters, 0.55);
    let comments = (active as f64 * comment_rate * duration_scale).round() as u64;
    Interactions { hearts, comments }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_many(viewers: u64, n: usize) -> Vec<Interactions> {
        let config = ScenarioConfig::periscope_study();
        let mut rng = SmallRng::seed_from_u64(5);
        (0..n)
            .map(|_| sample_interactions(&mut rng, &config, viewers, 300.0))
            .collect()
    }

    #[test]
    fn no_viewers_no_interactions() {
        let config = ScenarioConfig::periscope_study();
        let mut rng = SmallRng::seed_from_u64(1);
        let i = sample_interactions(&mut rng, &config, 0, 300.0);
        assert_eq!(
            i,
            Interactions {
                hearts: 0,
                comments: 0
            }
        );
    }

    #[test]
    fn hearts_scale_with_audience_but_comments_saturate() {
        // The Fig 5 contrast: a 10 000-viewer broadcast collects vastly
        // more hearts than a 100-viewer one, but comments are capped by
        // the commenter limit so they grow far slower.
        let small = sample_many(100, 2_000);
        let big = sample_many(10_000, 2_000);
        let mean = |v: &[Interactions], f: fn(&Interactions) -> u64| {
            v.iter().map(|i| f(i) as f64).sum::<f64>() / v.len() as f64
        };
        let heart_ratio = mean(&big, |i| i.hearts) / mean(&small, |i| i.hearts).max(1.0);
        let comment_ratio = mean(&big, |i| i.comments) / mean(&small, |i| i.comments).max(1.0);
        assert!(heart_ratio > 20.0, "heart ratio {heart_ratio}");
        assert!(comment_ratio < 3.0, "comment ratio {comment_ratio}");
    }

    #[test]
    fn popular_broadcasts_can_exceed_thousand_hearts() {
        // Fig 5: ~10% of broadcasts get >1000 hearts; our 1000-viewer
        // sample should do so routinely.
        let samples = sample_many(1_000, 2_000);
        let over_1k =
            samples.iter().filter(|i| i.hearts > 1_000).count() as f64 / samples.len() as f64;
        assert!(over_1k > 0.3, "over-1k-hearts fraction {over_1k}");
    }

    #[test]
    fn longer_broadcasts_gather_more_hearts() {
        let config = ScenarioConfig::periscope_study();
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 3_000;
        let short: f64 = (0..n)
            .map(|_| sample_interactions(&mut rng, &config, 500, 60.0).hearts as f64)
            .sum::<f64>()
            / n as f64;
        let long: f64 = (0..n)
            .map(|_| sample_interactions(&mut rng, &config, 500, 3_600.0).hearts as f64)
            .sum::<f64>()
            / n as f64;
        assert!(long > short * 1.5, "long {long} vs short {short}");
    }
}
