//! Broadcast duration model (Fig 3).
//!
//! The paper: "85% of broadcasts last <10 minutes"; Periscope lengths are
//! "more even", Meerkat "more skewed by a smaller number of longer
//! broadcasts". A lognormal fits both statements — the two presets differ
//! in `sigma` (tail weight) with medians around 2–3 minutes.

use rand::Rng;

use livescope_sim::{dist, SimDuration};

use crate::scenario::ScenarioConfig;

/// Floor on broadcast length: the crawler can't even join shorter ones.
pub const MIN_DURATION_SECS: f64 = 5.0;
/// Cap at 24 h, the longest the paper's Fig 3 axis shows.
pub const MAX_DURATION_SECS: f64 = 86_400.0;

/// Samples one broadcast duration.
pub fn sample_duration<R: Rng>(rng: &mut R, config: &ScenarioConfig) -> SimDuration {
    let secs = dist::log_normal(rng, config.duration_mu, config.duration_sigma)
        .clamp(MIN_DURATION_SECS, MAX_DURATION_SECS);
    SimDuration::from_secs_f64(secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_many(config: &ScenarioConfig, n: usize) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(42);
        (0..n)
            .map(|_| sample_duration(&mut rng, config).as_secs_f64())
            .collect()
    }

    #[test]
    fn most_broadcasts_are_under_ten_minutes() {
        // The paper's headline Fig 3 number: 85% < 10 min, both apps.
        for config in [
            ScenarioConfig::periscope_study(),
            ScenarioConfig::meerkat_study(),
        ] {
            let samples = sample_many(&config, 20_000);
            let under_10m =
                samples.iter().filter(|&&s| s < 600.0).count() as f64 / samples.len() as f64;
            assert!(
                (0.78..0.95).contains(&under_10m),
                "{}: {under_10m} under 10 min",
                config.app.name()
            );
        }
    }

    #[test]
    fn meerkat_tail_is_heavier() {
        let peri = sample_many(&ScenarioConfig::periscope_study(), 20_000);
        let meer = sample_many(&ScenarioConfig::meerkat_study(), 20_000);
        let p99 = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[(v.len() as f64 * 0.99) as usize]
        };
        assert!(
            p99(meer) > p99(peri),
            "Meerkat's 99th percentile should exceed Periscope's"
        );
    }

    #[test]
    fn durations_respect_bounds() {
        let samples = sample_many(&ScenarioConfig::meerkat_study(), 5_000);
        for s in samples {
            assert!((MIN_DURATION_SECS..=MAX_DURATION_SECS).contains(&s));
        }
    }

    #[test]
    fn median_is_minutes_not_hours() {
        let mut samples = sample_many(&ScenarioConfig::periscope_study(), 20_001);
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!(
            (60.0..600.0).contains(&median),
            "median {median}s should be minutes-scale"
        );
    }
}
