//! A reusable fixed-capacity bitset for per-day distinct-user tracking.
//!
//! The generator needs "how many distinct users were active today" for
//! every day of a study. A `HashSet<u32>` answers that but reallocates
//! and rehashes across days and is exactly the container class the
//! determinism lint exists to keep out of hot paths. This bitset is
//! sized once to the user population, clears in `O(words)` without
//! releasing its allocation, and iterates nothing — membership count is
//! maintained on insert.

/// Fixed-capacity set of `u32` ids in `[0, capacity)`.
#[derive(Clone, Debug)]
pub struct FixedBitset {
    words: Vec<u64>,
    capacity: usize,
    ones: usize,
}

impl FixedBitset {
    /// Creates an empty set able to hold ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        FixedBitset {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            ones: 0,
        }
    }

    /// Inserts `id`, returning `true` when it was not already present.
    ///
    /// # Panics
    /// Panics if `id` is outside the fixed capacity.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        assert!(
            (id as usize) < self.capacity,
            "id {id} out of bitset capacity {}",
            self.capacity
        );
        let word = &mut self.words[id as usize / 64];
        let bit = 1u64 << (id % 64);
        let fresh = *word & bit == 0;
        *word |= bit;
        self.ones += fresh as usize;
        fresh
    }

    /// True when `id` is in the set.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.words
            .get(id as usize / 64)
            .is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    /// Number of ids currently in the set.
    pub fn len(&self) -> usize {
        self.ones
    }

    /// True when no ids are set.
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// Largest id the set can hold plus one.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Folds another set of the same capacity into this one (set union).
    ///
    /// # Panics
    /// Panics when the capacities differ.
    pub fn union_with(&mut self, other: &FixedBitset) {
        assert_eq!(
            self.capacity, other.capacity,
            "bitset union requires equal capacities"
        );
        let mut ones = 0usize;
        for (mine, theirs) in self.words.iter_mut().zip(&other.words) {
            *mine |= theirs;
            ones += mine.count_ones() as usize;
        }
        self.ones = ones;
    }

    /// Empties the set, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// Bytes of heap + inline storage (replay memory accounting).
    pub fn tracked_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.words.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_reports_freshness() {
        let mut s = FixedBitset::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(s.insert(64));
        assert!(!s.insert(0));
        assert!(!s.insert(129));
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        assert!(!s.contains(63));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = FixedBitset::new(1000);
        for i in 0..1000 {
            s.insert(i);
        }
        assert_eq!(s.len(), 1000);
        let bytes = s.tracked_bytes();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.tracked_bytes(), bytes);
        assert!(s.insert(999));
    }

    #[test]
    fn union_counts_distinct_members() {
        let mut a = FixedBitset::new(200);
        let mut b = FixedBitset::new(200);
        for i in 0..100 {
            a.insert(i);
        }
        for i in 50..150 {
            b.insert(i);
        }
        a.union_with(&b);
        assert_eq!(a.len(), 150);
        assert!(a.contains(149));
        assert!(!a.contains(150));
    }

    #[test]
    fn zero_capacity_is_fine() {
        let s = FixedBitset::new(0);
        assert!(s.is_empty());
        assert!(!s.contains(0));
    }

    #[test]
    #[should_panic(expected = "out of bitset capacity")]
    fn out_of_range_insert_panics() {
        FixedBitset::new(64).insert(64);
    }
}
