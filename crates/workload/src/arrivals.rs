//! Broadcast arrival volume: the Fig 1 / Fig 2 trend machinery.
//!
//! Daily expected volume is `base × trend(day) × weekly(day) × launch(day)`
//! with an exponential trend between day 0 and the last day, a weekend
//! boost, and a permanent jump at the Android launch. Realized counts are
//! Poisson around the expectation; start instants within a day follow a
//! simple diurnal curve peaking in the evening.

use rand::Rng;

use livescope_sim::{dist, SimDuration, SimTime};

use crate::scenario::ScenarioConfig;

/// Seconds per simulated day.
pub const DAY_SECS: u64 = 86_400;

/// The smooth (pre-Poisson) expected broadcast count for `day`.
pub fn expected_daily_broadcasts(config: &ScenarioConfig, day: u32) -> f64 {
    let horizon = (config.days.max(2) - 1) as f64;
    let trend = config.total_growth.powf(day as f64 / horizon);
    let weekly = 1.0 + config.weekly_amplitude * weekend_factor(day);
    let launch = match config.android_launch_day {
        Some(d) if day >= d => config.android_jump,
        _ => 1.0,
    };
    config.base_daily_broadcasts * trend * weekly * launch
}

/// Weekend proximity in `[-1, 1]`: +1 on Saturday/Sunday, -1 on the Monday
/// trough, linear in between. Day 0 of the Periscope study (May 15, 2015)
/// was a Friday; we adopt that anchor for all scenarios.
pub fn weekend_factor(day: u32) -> f64 {
    // day 0 = Friday → weekday index (day + 4) % 7 with 0 = Monday.
    let weekday = (day + 4) % 7;
    match weekday {
        5 | 6 => 1.0, // Sat, Sun
        0 => -1.0,    // Mon
        1 => -0.6,    // Tue
        2 => -0.2,    // Wed
        3 => 0.2,     // Thu
        4 => 0.6,     // Fri
        _ => unreachable!(),
    }
}

/// Samples the realized broadcast count for `day`.
pub fn sample_daily_broadcasts<R: Rng>(rng: &mut R, config: &ScenarioConfig, day: u32) -> u64 {
    dist::poisson(rng, expected_daily_broadcasts(config, day))
}

/// Samples a start instant within `day`, diurnally weighted: a base level
/// all day plus an evening bump (18:00–23:00 local, collapsed to one
/// timezone — the paper aggregates globally, so only the existence of
/// within-day structure matters, not its phase).
pub fn sample_start_time<R: Rng>(rng: &mut R, day: u32) -> SimTime {
    // Rejection-free mixture: 60% uniform over the day, 40% in the evening
    // window.
    let offset_secs = if rng.gen_bool(0.4) {
        rng.gen_range(18.0 * 3600.0..23.0 * 3600.0)
    } else {
        rng.gen_range(0.0..DAY_SECS as f64)
    };
    SimTime::from_secs(day as u64 * DAY_SECS) + SimDuration::from_secs_f64(offset_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn periscope_trend_triples_over_the_study() {
        let c = ScenarioConfig::periscope_study();
        let first = expected_daily_broadcasts(&c, 0);
        let last = expected_daily_broadcasts(&c, c.days - 1);
        let ratio = last / first;
        // 3.3× trend + Android jump, modulo weekly phase.
        assert!(ratio > 3.0, "growth ratio {ratio}");
    }

    #[test]
    fn meerkat_trend_halves_over_the_study() {
        let c = ScenarioConfig::meerkat_study();
        let first = expected_daily_broadcasts(&c, 0);
        let last = expected_daily_broadcasts(&c, c.days - 1);
        let ratio = last / first;
        assert!(ratio < 0.6, "decline ratio {ratio}");
    }

    #[test]
    fn android_launch_is_a_permanent_jump() {
        let c = ScenarioConfig::periscope_study();
        let d = c.android_launch_day.unwrap();
        // Compare same weekday one week apart, straddling the launch.
        let before = expected_daily_broadcasts(&c, d - 7);
        let after = expected_daily_broadcasts(&c, d);
        assert!(after / before > 1.25, "jump {}", after / before);
    }

    #[test]
    fn weekend_peaks_and_monday_troughs() {
        // day 0 = Friday, so day 1 = Saturday, day 3 = Monday.
        assert_eq!(weekend_factor(1), 1.0);
        assert_eq!(weekend_factor(2), 1.0);
        assert_eq!(weekend_factor(3), -1.0);
        let c = ScenarioConfig::periscope_study();
        let sat = expected_daily_broadcasts(&c, 1);
        let mon = expected_daily_broadcasts(&c, 3);
        assert!(sat > mon, "weekend {sat} must beat Monday {mon}");
    }

    #[test]
    fn weekly_pattern_repeats_with_period_seven() {
        for day in 0..21 {
            assert_eq!(weekend_factor(day), weekend_factor(day + 7));
        }
    }

    #[test]
    fn sampled_counts_are_near_expectation() {
        let c = ScenarioConfig::periscope_study();
        let mut rng = SmallRng::seed_from_u64(1);
        let day = 50;
        let expected = expected_daily_broadcasts(&c, day);
        let n = 300;
        let mean: f64 = (0..n)
            .map(|_| sample_daily_broadcasts(&mut rng, &c, day) as f64)
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn start_times_fall_inside_their_day() {
        let mut rng = SmallRng::seed_from_u64(2);
        for day in [0u32, 17, 96] {
            for _ in 0..200 {
                let t = sample_start_time(&mut rng, day).as_micros();
                let lo = day as u64 * DAY_SECS * 1_000_000;
                let hi = (day as u64 + 1) * DAY_SECS * 1_000_000;
                assert!((lo..hi).contains(&t));
            }
        }
    }

    #[test]
    fn evenings_are_busier_than_mornings() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut evening = 0;
        let mut morning = 0;
        for _ in 0..20_000 {
            let t = sample_start_time(&mut rng, 0).as_secs_f64();
            let hour = (t / 3600.0) % 24.0;
            if (18.0..23.0).contains(&hour) {
                evening += 1;
            } else if (6.0..11.0).contains(&hour) {
                morning += 1;
            }
        }
        assert!(
            evening as f64 > morning as f64 * 1.5,
            "evening {evening} vs morning {morning}"
        );
    }
}
