//! Viewers-per-broadcast model (Figs 4 and 7) and the RTMP/HLS split.
//!
//! A broadcast's audience has two parts:
//!
//! * **organic** viewers discovering it on the global list — a
//!   zero-inflated truncated power law (Meerkat: 60% of broadcasts get
//!   nobody; Periscope: almost every broadcast gets someone, the biggest
//!   get ~100K);
//! * **notified followers** — each follower joins independently with
//!   `follower_join_prob`, which is what couples audience size to follower
//!   count (Fig 7) and gives celebrities their built-in audiences.
//!
//! The first `rtmp_slots` arrivals connect to Wowza over RTMP (and may
//! comment); the remainder are handed to Fastly over HLS. The paper checks
//! this split: 5.77% of broadcasts had ≥1 HLS viewer, 435K (≈2.2%) had
//! ≥100.

use rand::Rng;

use livescope_sim::dist;

use crate::scenario::ScenarioConfig;

/// Audience of one broadcast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Audience {
    /// Total views (mobile + web).
    pub total: u64,
    /// Views by registered mobile users.
    pub mobile: u64,
    /// Viewers served over HLS (arrivals beyond the RTMP slots).
    pub hls: u64,
}

/// Samples a broadcast's audience given its broadcaster's follower count.
pub fn sample_audience<R: Rng>(rng: &mut R, config: &ScenarioConfig, followers: u64) -> Audience {
    // A "dead" broadcast draws nobody at all — not even notified
    // followers (Meerkat's Fig 4: 60% of broadcasts have zero viewers,
    // including those by followed users).
    if rng.gen_bool(config.zero_viewer_fraction) {
        return Audience {
            total: 0,
            mobile: 0,
            hls: 0,
        };
    }
    let organic = dist::power_law_integer(rng, 1, config.viewer_max, config.viewer_alpha);
    let notified = dist::binomial(rng, followers, config.follower_join_prob);
    let total = (organic + notified).min(config.viewer_max);
    let mobile = dist::binomial(rng, total, config.mobile_fraction);
    let hls = total.saturating_sub(config.rtmp_slots);
    Audience { total, mobile, hls }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn audiences(config: &ScenarioConfig, followers: u64, n: usize) -> Vec<Audience> {
        let mut rng = SmallRng::seed_from_u64(7);
        (0..n)
            .map(|_| sample_audience(&mut rng, config, followers))
            .collect()
    }

    #[test]
    fn meerkat_zero_viewer_rate_matches_fig4() {
        let config = ScenarioConfig::meerkat_study();
        let auds = audiences(&config, 0, 20_000);
        let zero = auds.iter().filter(|a| a.total == 0).count() as f64 / auds.len() as f64;
        assert!((zero - 0.60).abs() < 0.02, "zero-viewer rate {zero}");
    }

    #[test]
    fn periscope_nearly_all_broadcasts_have_a_viewer() {
        let config = ScenarioConfig::periscope_study();
        let auds = audiences(&config, 0, 20_000);
        let zero = auds.iter().filter(|a| a.total == 0).count() as f64 / auds.len() as f64;
        assert!(zero < 0.05, "zero-viewer rate {zero}");
    }

    #[test]
    fn hls_broadcast_fraction_is_single_digit_percent() {
        // Paper: 5.77% of broadcasts had ≥1 HLS viewer. Follower boosts in
        // the full generator nudge this up; the organic-only rate must sit
        // in the single digits.
        let config = ScenarioConfig::periscope_study();
        let auds = audiences(&config, 0, 50_000);
        let with_hls = auds.iter().filter(|a| a.hls > 0).count() as f64 / auds.len() as f64;
        assert!((0.01..0.10).contains(&with_hls), "HLS fraction {with_hls}");
    }

    #[test]
    fn followers_grow_the_audience() {
        let config = ScenarioConfig::periscope_study();
        let mean = |followers: u64| {
            let auds = audiences(&config, followers, 5_000);
            auds.iter().map(|a| a.total as f64).sum::<f64>() / auds.len() as f64
        };
        let nobody = mean(0);
        let thousand = mean(1_000);
        assert!(
            thousand > nobody + 50.0,
            "1000 followers ({thousand}) should clearly beat none ({nobody})"
        );
    }

    #[test]
    fn components_never_exceed_total() {
        let config = ScenarioConfig::periscope_study();
        for a in audiences(&config, 500, 10_000) {
            assert!(a.mobile <= a.total);
            assert!(a.hls <= a.total);
            assert!(a.total <= config.viewer_max);
        }
    }

    #[test]
    fn audience_tail_reaches_large_values() {
        let config = ScenarioConfig::periscope_study();
        let auds = audiences(&config, 0, 100_000);
        let max = auds.iter().map(|a| a.total).max().unwrap();
        assert!(max > 5_000, "max audience {max} should be large");
    }
}
