//! The workload integrator: turns a [`ScenarioConfig`] into a full
//! [`Workload`] — follow graph, per-broadcast records, per-user activity
//! tallies and daily aggregates.

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::Rng;

use livescope_graph::generate::{follow_graph, FollowGraphConfig};
use livescope_graph::DiGraph;
use livescope_sim::{dist, RngPool};

use crate::arrivals;
use crate::duration::sample_duration;
use crate::interactions::sample_interactions;
use crate::popularity::sample_audience;
use crate::scenario::{App, ScenarioConfig};
use crate::types::{BroadcastRecord, DayStats, Workload};

/// Pareto exponent of broadcast-creation propensity (Fig 6 "create" lines:
/// a small cadre of users produces most broadcasts).
const CREATOR_ALPHA: f64 = 1.30;
/// Generates the complete workload for a scenario.
pub fn generate(config: &ScenarioConfig) -> Workload {
    generate_with_graph(config, None)
}

/// Like [`generate`] but accepts a pre-built follow graph (the Table 2 /
/// Fig 7 experiments reuse one graph across analyses).
pub fn generate_with_graph(config: &ScenarioConfig, graph: Option<&DiGraph>) -> Workload {
    config.validate().expect("invalid ScenarioConfig");
    let pool = RngPool::new(config.seed);
    let owned_graph;
    let graph = match graph {
        Some(g) => {
            assert_eq!(
                g.node_count(),
                config.users,
                "supplied graph must cover the user population"
            );
            g
        }
        None => {
            owned_graph = default_graph(config, &pool);
            &owned_graph
        }
    };

    let creator_cum = propensity_cumulative(
        &mut pool.fork("creator-propensity"),
        config.users,
        CREATOR_ALPHA,
        config.creator_inactive_fraction,
    );
    let viewer_cum = lognormal_cumulative(
        &mut pool.fork("viewer-propensity"),
        config.users,
        config.viewer_activity_sigma,
        config.viewer_inactive_fraction,
    );

    let mut rng = pool.fork("broadcasts");
    let mut user_views = vec![0u32; config.users];
    let mut user_creates = vec![0u32; config.users];
    let mut broadcasts = Vec::new();
    let mut daily = Vec::with_capacity(config.days as usize);
    let mut next_id: u64 = 1;

    let mut day_viewers: HashSet<u32> = HashSet::new();
    let mut day_broadcasters: HashSet<u32> = HashSet::new();
    for day in 0..config.days {
        day_viewers.clear();
        day_broadcasters.clear();
        let count = arrivals::sample_daily_broadcasts(&mut rng, config, day);
        for _ in 0..count {
            let broadcaster = weighted_pick(&creator_cum, &mut rng);
            let followers = graph.in_degree(broadcaster) as u64;
            let start = arrivals::sample_start_time(&mut rng, day);
            let dur = sample_duration(&mut rng, config);
            let audience = sample_audience(&mut rng, config, followers);
            let inter = sample_interactions(&mut rng, config, audience.total, dur.as_secs_f64());
            user_creates[broadcaster as usize] += 1;
            day_broadcasters.insert(broadcaster);
            // Attribute mobile views to registered users for Fig 6 /
            // Table 1 unique-viewer accounting.
            for _ in 0..audience.mobile {
                let viewer = weighted_pick(&viewer_cum, &mut rng);
                user_views[viewer as usize] += 1;
                day_viewers.insert(viewer);
            }
            broadcasts.push(BroadcastRecord {
                id: next_id,
                broadcaster,
                day,
                start,
                duration: dur,
                followers,
                viewers: audience.total,
                mobile_viewers: audience.mobile,
                hls_viewers: audience.hls,
                hearts: inter.hearts,
                comments: inter.comments,
            });
            next_id += 1;
        }
        daily.push(DayStats {
            day,
            broadcasts: count,
            active_viewers: day_viewers.len() as u64,
            active_broadcasters: day_broadcasters.len() as u64,
        });
    }

    Workload {
        config: config.clone(),
        broadcasts,
        daily,
        user_views,
        user_creates,
    }
}

/// The scenario's default follow graph: Periscope-like for Periscope,
/// sparser for Meerkat (whose graph "was not fully connected", §3.1).
pub fn default_graph(config: &ScenarioConfig, pool: &RngPool) -> DiGraph {
    let graph_config = match config.app {
        App::Periscope => FollowGraphConfig {
            nodes: config.users,
            ..FollowGraphConfig::periscope()
        },
        App::Meerkat => FollowGraphConfig {
            nodes: config.users,
            mean_follows: 4.0,
            preferential_bias: 0.7,
            triadic_closure: 0.2,
            disassortative_passes: 1.0,
        },
    };
    follow_graph(&graph_config, pool.stream_seed("graph"))
}

/// Builds a cumulative-weight table of Pareto propensities for weighted
/// user sampling. A user is entirely inactive (zero weight — never
/// sampled) with probability `inactive_fraction`, which is what keeps the
/// Table 1 "unique viewers/broadcasters" counts below the registered
/// population, as in the paper.
fn propensity_cumulative(
    rng: &mut SmallRng,
    users: usize,
    alpha: f64,
    inactive_fraction: f64,
) -> Vec<f64> {
    let mut cum = Vec::with_capacity(users);
    let mut total = 0.0;
    for _ in 0..users {
        if !rng.gen_bool(inactive_fraction) {
            total += dist::pareto(rng, 1.0, alpha);
        }
        cum.push(total);
    }
    assert!(total > 0.0, "every user is inactive — population too small");
    cum
}

/// Like [`propensity_cumulative`] but with lognormal weights.
fn lognormal_cumulative(
    rng: &mut SmallRng,
    users: usize,
    sigma: f64,
    inactive_fraction: f64,
) -> Vec<f64> {
    let mut cum = Vec::with_capacity(users);
    let mut total = 0.0;
    for _ in 0..users {
        if !rng.gen_bool(inactive_fraction) {
            total += dist::log_normal(rng, 0.0, sigma);
        }
        cum.push(total);
    }
    assert!(total > 0.0, "every user is inactive — population too small");
    cum
}

/// Samples a user id proportional to its propensity weight.
fn weighted_pick(cumulative: &[f64], rng: &mut SmallRng) -> u32 {
    let total = *cumulative.last().expect("non-empty propensity table");
    let needle = rng.gen_range(0.0..total);
    cumulative.partition_point(|&c| c <= needle) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_periscope() -> ScenarioConfig {
        ScenarioConfig {
            days: 21,
            users: 3_000,
            base_daily_broadcasts: 60.0,
            ..ScenarioConfig::periscope_study()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = small_periscope();
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.total_broadcasts(), b.total_broadcasts());
        assert_eq!(a.total_views(), b.total_views());
        assert_eq!(a.user_views, b.user_views);
        let mut c2 = config.clone();
        c2.seed ^= 1;
        let c = generate(&c2);
        assert_ne!(a.total_views(), c.total_views());
    }

    #[test]
    fn record_invariants_hold() {
        let w = generate(&small_periscope());
        assert!(w.total_broadcasts() > 500);
        let mut last_id = 0;
        for b in &w.broadcasts {
            assert!(b.id > last_id, "ids must be strictly increasing");
            last_id = b.id;
            assert!(b.mobile_viewers <= b.viewers);
            assert!(b.hls_viewers <= b.viewers);
            assert!((b.broadcaster as usize) < w.config.users);
            assert!(b.day < w.config.days);
            assert_eq!(
                b.day as u64,
                b.start.as_micros() / (arrivals::DAY_SECS * 1_000_000)
            );
        }
    }

    #[test]
    fn daily_stats_are_consistent_with_records() {
        let w = generate(&small_periscope());
        for (day, stats) in w.daily.iter().enumerate() {
            let records = w.broadcasts.iter().filter(|b| b.day == day as u32).count() as u64;
            assert_eq!(stats.broadcasts, records, "day {day}");
            assert!(stats.active_broadcasters <= stats.broadcasts.max(1));
        }
    }

    #[test]
    fn viewer_to_broadcaster_ratio_is_near_ten() {
        // Fig 2's headline: daily active viewers ≈ 10× daily active
        // broadcasters on Periscope.
        let w = generate(&small_periscope());
        let (mut viewers, mut broadcasters) = (0.0, 0.0);
        for d in &w.daily {
            viewers += d.active_viewers as f64;
            broadcasters += d.active_broadcasters as f64;
        }
        let ratio = viewers / broadcasters;
        assert!(
            (4.0..25.0).contains(&ratio),
            "viewer:broadcaster ratio {ratio}"
        );
    }

    #[test]
    fn user_tallies_match_broadcast_totals() {
        let w = generate(&small_periscope());
        let views_from_users: u64 = w.user_views.iter().map(|&v| v as u64).sum();
        assert_eq!(views_from_users, w.mobile_views());
        let creates_from_users: u64 = w.user_creates.iter().map(|&c| c as u64).sum();
        assert_eq!(creates_from_users, w.total_broadcasts());
    }

    #[test]
    fn viewing_activity_is_skewed_like_fig6() {
        let w = generate(&small_periscope());
        let mut views: Vec<u32> = w.user_views.iter().copied().filter(|&v| v > 0).collect();
        views.sort_unstable();
        let median = views[views.len() / 2] as f64;
        let top = views[(views.len() as f64 * 0.85) as usize] as f64;
        assert!(
            top >= median * 3.0,
            "top-15% threshold {top} vs median {median} — not skewed enough"
        );
    }

    #[test]
    fn meerkat_generates_mostly_empty_broadcasts() {
        let mut config = ScenarioConfig::meerkat_study();
        config.days = 10;
        config.users = 800;
        let w = generate(&config);
        let zero = w.broadcasts.iter().filter(|b| b.viewers == 0).count() as f64
            / w.total_broadcasts() as f64;
        assert!((0.5..0.7).contains(&zero), "zero fraction {zero}");
    }

    #[test]
    fn followers_correlate_with_viewers() {
        // Fig 7's qualitative claim, tested via rank buckets: broadcasts
        // by the most-followed decile must out-draw the least-followed.
        let w = generate(&small_periscope());
        let mut with_followers: Vec<(u64, u64)> = w
            .broadcasts
            .iter()
            .map(|b| (b.followers, b.viewers))
            .collect();
        with_followers.sort_by_key(|&(f, _)| f);
        let n = with_followers.len();
        // Medians, not means: the organic power-law tail throws 10K-viewer
        // outliers into every follower bucket (that is Fig 7's scatter),
        // but the *typical* audience must track follower count.
        let median = |slice: &[(u64, u64)]| {
            let mut v: Vec<u64> = slice.iter().map(|&(_, v)| v).collect();
            v.sort_unstable();
            v[v.len() / 2] as f64
        };
        let bottom = median(&with_followers[..n / 2]);
        let top = median(&with_followers[9 * n / 10..]);
        assert!(
            top >= bottom * 2.0,
            "top-decile median audience {top} vs bottom-half {bottom}"
        );
    }

    #[test]
    fn supplied_graph_must_match_population() {
        let config = small_periscope();
        let pool = RngPool::new(1);
        let wrong = follow_graph(
            &FollowGraphConfig {
                nodes: 10,
                mean_follows: 2.0,
                preferential_bias: 0.5,
                triadic_closure: 0.2,
                disassortative_passes: 0.0,
            },
            pool.stream_seed("x"),
        );
        let result = std::panic::catch_unwind(|| generate_with_graph(&config, Some(&wrong)));
        assert!(result.is_err());
    }
}
