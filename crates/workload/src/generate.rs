//! The workload integrator: turns a [`ScenarioConfig`] into broadcast
//! records — either materialized as a full [`Workload`] or streamed one
//! record at a time through [`BroadcastStream`], which is the
//! bounded-memory path the longitudinal replay uses (DESIGN.md §10).
//!
//! Both paths are the *same* generator: [`generate_with_graph`] drains a
//! [`BroadcastStream`] into a `Vec`, so record sequences, RNG
//! consumption, and daily aggregates are identical by construction.
//!
//! The generator itself is split in two (DESIGN.md §13), so the replay
//! campaign can be partitioned across worker shards without changing a
//! single output byte:
//!
//! * [`ScheduleStream`] — the cheap, inherently sequential half: daily
//!   Poisson broadcast counts and weighted creator picks, drawn from the
//!   `"broadcasts"` stream in `(day, seq)` order;
//! * [`RecordSampler`] — the expensive half: everything else about a
//!   broadcast (start, duration, audience, interactions, per-view viewer
//!   picks), drawn from a *per-record* stream
//!   `pool.fork_indexed("record", id)`, so a record is a pure function of
//!   `(seed, id, day, broadcaster, followers)` — independent of which
//!   thread samples it, or in what order.

use rand::rngs::SmallRng;
use rand::Rng;

use livescope_graph::{DiGraph, FollowParams, GraphKind, GraphSpec};
use livescope_sim::{dist, RngPool};

use crate::arrivals;
use crate::bitset::FixedBitset;
use crate::duration::sample_duration;
use crate::interactions::sample_interactions;
use crate::popularity::sample_audience;
use crate::scenario::{App, ScenarioConfig};
use crate::types::{BroadcastRecord, DayStats, Workload, WorkloadSummary};

/// Pareto exponent of broadcast-creation propensity (Fig 6 "create" lines:
/// a small cadre of users produces most broadcasts).
const CREATOR_ALPHA: f64 = 1.30;

/// Generates the complete workload for a scenario.
pub fn generate(config: &ScenarioConfig) -> Workload {
    generate_with_graph(config, None)
}

/// Like [`generate`] but accepts a pre-built follow graph (the Table 2 /
/// Fig 7 experiments reuse one graph across analyses).
pub fn generate_with_graph(config: &ScenarioConfig, graph: Option<&DiGraph>) -> Workload {
    let mut stream = match graph {
        Some(g) => generate_streaming_with_graph(config, g),
        None => generate_streaming(config),
    };
    let mut broadcasts = Vec::new();
    for record in &mut stream {
        broadcasts.push(record);
    }
    let summary = stream.into_summary();
    Workload {
        config: summary.config,
        broadcasts,
        daily: summary.daily,
        user_views: summary.user_views,
        user_creates: summary.user_creates,
    }
}

/// Streaming variant of [`generate`]: yields every [`BroadcastRecord`] in
/// deterministic `(day, seq)` order without ever materializing the
/// `broadcasts` vector. The stream owns its follow graph.
pub fn generate_streaming(config: &ScenarioConfig) -> BroadcastStream<'static> {
    config.validate().expect("invalid ScenarioConfig");
    let pool = RngPool::new(config.seed);
    let graph = default_graph(config, &pool);
    BroadcastStream::new(config, GraphRef::Owned(graph))
}

/// Like [`generate_streaming`] but borrowing a pre-built follow graph.
pub fn generate_streaming_with_graph<'a>(
    config: &ScenarioConfig,
    graph: &'a DiGraph,
) -> BroadcastStream<'a> {
    config.validate().expect("invalid ScenarioConfig");
    assert_eq!(
        graph.node_count(),
        config.users,
        "supplied graph must cover the user population"
    );
    BroadcastStream::new(config, GraphRef::Borrowed(graph))
}

/// Owned-or-borrowed follow graph behind a [`BroadcastStream`].
enum GraphRef<'a> {
    /// Graph built by the stream itself (the default path).
    Owned(DiGraph),
    /// Caller-supplied graph shared across analyses.
    Borrowed(&'a DiGraph),
}

impl GraphRef<'_> {
    fn get(&self) -> &DiGraph {
        match self {
            GraphRef::Owned(g) => g,
            GraphRef::Borrowed(g) => g,
        }
    }
}

/// One slot in the broadcast schedule: the cheap, sequential half of a
/// broadcast record — *who* broadcasts, *when* (which day), under *which*
/// global id. [`RecordSampler::sample`] expands a slot into a full
/// [`BroadcastRecord`] from the slot's own per-record RNG stream, so slots
/// can be partitioned across shards freely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledBroadcast {
    /// Global broadcast id, strictly increasing from 1 in schedule order.
    pub id: u64,
    /// Day index within the study window.
    pub day: u32,
    /// The broadcasting user.
    pub broadcaster: u32,
}

/// The sequential half of the generator: daily Poisson broadcast counts
/// and weighted creator picks, drawn in `(day, seq)` order from the
/// `"broadcasts"` stream of the scenario's [`RngPool`].
///
/// This is the *only* part of workload generation with cross-record RNG
/// dependence; it holds `O(users)` state (the creator-propensity table)
/// and emits a few dozen bytes per record, so a coordinator can drain it
/// serially while [`RecordSampler`] does the heavy per-record sampling on
/// worker shards (DESIGN.md §13).
pub struct ScheduleStream {
    config: ScenarioConfig,
    creator_cum: Vec<f64>,
    rng: SmallRng,
    /// Day currently being emitted.
    day: u32,
    /// Slots still to emit for the current day.
    remaining_today: u64,
    /// True once the current day's count has been sampled.
    day_sampled: bool,
    next_id: u64,
}

impl ScheduleStream {
    /// Builds the schedule for a scenario. Panics on an invalid config.
    pub fn new(config: &ScenarioConfig) -> ScheduleStream {
        config.validate().expect("invalid ScenarioConfig");
        let pool = RngPool::new(config.seed);
        let creator_cum = propensity_cumulative(
            &mut pool.fork("creator-propensity"),
            config.users,
            CREATOR_ALPHA,
            config.creator_inactive_fraction,
        );
        ScheduleStream {
            config: config.clone(),
            creator_cum,
            rng: pool.fork("broadcasts"),
            day: 0,
            remaining_today: 0,
            day_sampled: false,
            next_id: 1,
        }
    }

    /// The scenario being scheduled.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Bytes of heap + inline storage held by the schedule — `O(users)`
    /// for the creator-propensity table.
    pub fn tracked_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.creator_cum.capacity() * std::mem::size_of::<f64>()
    }
}

impl Iterator for ScheduleStream {
    type Item = ScheduledBroadcast;

    fn next(&mut self) -> Option<ScheduledBroadcast> {
        while self.remaining_today == 0 {
            if self.day_sampled {
                self.day += 1;
                self.day_sampled = false;
            }
            if self.day >= self.config.days {
                return None;
            }
            self.remaining_today =
                arrivals::sample_daily_broadcasts(&mut self.rng, &self.config, self.day);
            self.day_sampled = true;
        }
        let broadcaster = weighted_pick(&self.creator_cum, &mut self.rng);
        let slot = ScheduledBroadcast {
            id: self.next_id,
            day: self.day,
            broadcaster,
        };
        self.next_id += 1;
        self.remaining_today -= 1;
        Some(slot)
    }
}

/// The data-parallel half of the generator: expands a
/// [`ScheduledBroadcast`] into a full [`BroadcastRecord`].
///
/// Every draw (start time, duration, audience, interactions, per-view
/// viewer picks) comes from the slot's *own* forked stream,
/// `pool.fork_indexed("record", slot.id)`, making the record a pure
/// function of `(seed, id, day, broadcaster, followers)`. Shards can
/// therefore sample disjoint slot subsets in any order — on any thread —
/// and produce exactly the bytes the sequential path produces.
///
/// The sampler is immutable (`sample` takes `&self`) and cheap to share
/// across threads; it holds `O(users)` state (the viewer-propensity
/// table).
pub struct RecordSampler {
    config: ScenarioConfig,
    viewer_cum: Vec<f64>,
    pool: RngPool,
}

impl RecordSampler {
    /// Builds the sampler for a scenario. Panics on an invalid config.
    pub fn new(config: &ScenarioConfig) -> RecordSampler {
        config.validate().expect("invalid ScenarioConfig");
        let pool = RngPool::new(config.seed);
        let viewer_cum = lognormal_cumulative(
            &mut pool.fork("viewer-propensity"),
            config.users,
            config.viewer_activity_sigma,
            config.viewer_inactive_fraction,
        );
        RecordSampler {
            config: config.clone(),
            viewer_cum,
            pool,
        }
    }

    /// The scenario being sampled.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Expands one schedule slot into a full record. `followers` is the
    /// broadcaster's in-degree in the follow graph. `on_mobile_view` is
    /// invoked once per attributed mobile view with the viewing user's id
    /// (for Fig 6 / Table 1 unique-viewer accounting); the picks happen in
    /// a fixed order within the record's private stream.
    pub fn sample(
        &self,
        slot: ScheduledBroadcast,
        followers: u64,
        mut on_mobile_view: impl FnMut(u32),
    ) -> BroadcastRecord {
        let mut rng = self.pool.fork_indexed("record", slot.id);
        let start = arrivals::sample_start_time(&mut rng, slot.day);
        let dur = sample_duration(&mut rng, &self.config);
        let audience = sample_audience(&mut rng, &self.config, followers);
        let inter = sample_interactions(&mut rng, &self.config, audience.total, dur.as_secs_f64());
        for _ in 0..audience.mobile {
            on_mobile_view(weighted_pick(&self.viewer_cum, &mut rng));
        }
        BroadcastRecord {
            id: slot.id,
            broadcaster: slot.broadcaster,
            day: slot.day,
            start,
            duration: dur,
            followers,
            viewers: audience.total,
            mobile_viewers: audience.mobile,
            hls_viewers: audience.hls,
            hearts: inter.hearts,
            comments: inter.comments,
        }
    }

    /// Bytes of heap + inline storage held by the sampler — `O(users)`
    /// for the viewer-propensity table.
    pub fn tracked_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.viewer_cum.capacity() * std::mem::size_of::<f64>()
    }
}

/// An iterator of [`BroadcastRecord`]s in `(day, seq)` order.
///
/// Composes a [`ScheduleStream`] and a [`RecordSampler`] with the
/// ground-truth accounting (per-user tallies, per-day aggregates, two
/// reusable [`FixedBitset`]s for distinct-user counting) — `O(users +
/// days)` state total. Because every record draws from its own
/// `fork_indexed("record", id)` stream, this single-threaded composition
/// is byte-identical to the sharded fold for any worker count
/// (DESIGN.md §13).
///
/// Drive it to exhaustion, then call [`BroadcastStream::into_summary`]
/// for the daily/user aggregates (a [`WorkloadSummary`]).
pub struct BroadcastStream<'a> {
    schedule: ScheduleStream,
    sampler: RecordSampler,
    graph: GraphRef<'a>,
    user_views: Vec<u32>,
    user_creates: Vec<u32>,
    daily: Vec<DayStats>,
    day_viewers: FixedBitset,
    day_broadcasters: FixedBitset,
    /// Day whose aggregates are accumulating (== `daily.len()`).
    acct_day: u32,
    /// Records seen so far for `acct_day`.
    day_count: u64,
}

impl<'a> BroadcastStream<'a> {
    fn new(config: &ScenarioConfig, graph: GraphRef<'a>) -> BroadcastStream<'a> {
        BroadcastStream {
            schedule: ScheduleStream::new(config),
            sampler: RecordSampler::new(config),
            graph,
            user_views: vec![0u32; config.users],
            user_creates: vec![0u32; config.users],
            daily: Vec::with_capacity(config.days as usize),
            day_viewers: FixedBitset::new(config.users),
            day_broadcasters: FixedBitset::new(config.users),
            acct_day: 0,
            day_count: 0,
        }
    }

    /// The scenario being generated.
    pub fn config(&self) -> &ScenarioConfig {
        self.schedule.config()
    }

    /// The follow graph backing follower counts.
    pub fn graph(&self) -> &DiGraph {
        self.graph.get()
    }

    /// Closes out the accounting day: records its aggregates and resets
    /// the distinct-user bitsets (keeping their allocations).
    fn finish_day(&mut self) {
        self.daily.push(DayStats {
            day: self.acct_day,
            broadcasts: self.day_count,
            active_viewers: self.day_viewers.len() as u64,
            active_broadcasters: self.day_broadcasters.len() as u64,
        });
        self.day_viewers.clear();
        self.day_broadcasters.clear();
        self.acct_day += 1;
        self.day_count = 0;
    }

    /// Consumes the stream, draining any unread records, and returns the
    /// accumulated aggregates.
    pub fn into_summary(mut self) -> WorkloadSummary {
        for _ in &mut self {}
        WorkloadSummary {
            config: self.schedule.config().clone(),
            daily: self.daily,
            user_views: self.user_views,
            user_creates: self.user_creates,
        }
    }

    /// Bytes of heap + inline storage held by the stream's accumulators
    /// and sampler tables — `O(users + days)`, independent of how many
    /// records have been yielded. The follow graph (an input, shared
    /// across paths) is accounted separately by the bench.
    pub fn tracked_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.schedule.tracked_bytes()
            + self.sampler.tracked_bytes()
            + self.user_views.capacity() * std::mem::size_of::<u32>()
            + self.user_creates.capacity() * std::mem::size_of::<u32>()
            + self.daily.capacity() * std::mem::size_of::<DayStats>()
            + self.day_viewers.tracked_bytes()
            + self.day_broadcasters.tracked_bytes()
    }
}

impl Iterator for BroadcastStream<'_> {
    type Item = BroadcastRecord;

    fn next(&mut self) -> Option<BroadcastRecord> {
        let Some(slot) = self.schedule.next() else {
            // Close every remaining day (including trailing zero-broadcast
            // days) exactly once; further calls fall through harmlessly.
            while self.acct_day < self.schedule.config().days {
                self.finish_day();
            }
            return None;
        };
        while slot.day > self.acct_day {
            self.finish_day();
        }
        self.day_count += 1;
        self.user_creates[slot.broadcaster as usize] += 1;
        self.day_broadcasters.insert(slot.broadcaster);
        let followers = self.graph.get().in_degree(slot.broadcaster) as u64;
        let (user_views, day_viewers) = (&mut self.user_views, &mut self.day_viewers);
        let record = self.sampler.sample(slot, followers, |viewer| {
            user_views[viewer as usize] += 1;
            day_viewers.insert(viewer);
        });
        Some(record)
    }
}

/// The scenario's default follow-graph recipe: Periscope-like for
/// Periscope, sparser for Meerkat (whose graph "was not fully connected",
/// §3.1). Benches that want build statistics generate from this spec
/// themselves (seeded with [`default_graph_seed`]) and hand the graph to
/// [`generate_streaming_with_graph`].
pub fn default_graph_spec(config: &ScenarioConfig) -> GraphSpec {
    match config.app {
        App::Periscope => GraphSpec::periscope().with_nodes(config.users),
        App::Meerkat => GraphSpec {
            nodes: config.users,
            kind: GraphKind::Follow(FollowParams {
                mean_follows: 4.0,
                preferential_bias: 0.7,
                triadic_closure: 0.2,
                disassortative_passes: 1.0,
            }),
        },
    }
}

/// The seed [`generate_streaming`] uses for its owned graph. External
/// builders must use this seed for the workload to be identical to the
/// owned-graph path.
pub fn default_graph_seed(config: &ScenarioConfig) -> u64 {
    RngPool::new(config.seed).stream_seed("graph")
}

/// The scenario's default follow graph, built from [`default_graph_spec`].
pub fn default_graph(config: &ScenarioConfig, pool: &RngPool) -> DiGraph {
    DiGraph::generate(&default_graph_spec(config), pool.stream_seed("graph"))
}

/// Builds a cumulative-weight table of Pareto propensities for weighted
/// user sampling. A user is entirely inactive (zero weight — never
/// sampled) with probability `inactive_fraction`, which is what keeps the
/// Table 1 "unique viewers/broadcasters" counts below the registered
/// population, as in the paper.
fn propensity_cumulative(
    rng: &mut SmallRng,
    users: usize,
    alpha: f64,
    inactive_fraction: f64,
) -> Vec<f64> {
    let mut cum = Vec::with_capacity(users);
    let mut total = 0.0;
    for _ in 0..users {
        if !rng.gen_bool(inactive_fraction) {
            total += dist::pareto(rng, 1.0, alpha);
        }
        cum.push(total);
    }
    assert!(total > 0.0, "every user is inactive — population too small");
    cum
}

/// Like [`propensity_cumulative`] but with lognormal weights.
fn lognormal_cumulative(
    rng: &mut SmallRng,
    users: usize,
    sigma: f64,
    inactive_fraction: f64,
) -> Vec<f64> {
    let mut cum = Vec::with_capacity(users);
    let mut total = 0.0;
    for _ in 0..users {
        if !rng.gen_bool(inactive_fraction) {
            total += dist::log_normal(rng, 0.0, sigma);
        }
        cum.push(total);
    }
    assert!(total > 0.0, "every user is inactive — population too small");
    cum
}

/// Samples a user id proportional to its propensity weight.
fn weighted_pick(cumulative: &[f64], rng: &mut SmallRng) -> u32 {
    let total = *cumulative.last().expect("non-empty propensity table");
    let needle = rng.gen_range(0.0..total);
    cumulative.partition_point(|&c| c <= needle) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_periscope() -> ScenarioConfig {
        ScenarioConfig {
            days: 21,
            users: 3_000,
            base_daily_broadcasts: 60.0,
            ..ScenarioConfig::periscope_study()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = small_periscope();
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.total_broadcasts(), b.total_broadcasts());
        assert_eq!(a.total_views(), b.total_views());
        assert_eq!(a.user_views, b.user_views);
        let mut c2 = config.clone();
        c2.seed ^= 1;
        let c = generate(&c2);
        assert_ne!(a.total_views(), c.total_views());
    }

    #[test]
    fn streaming_matches_materialized() {
        // The materialized path is literally the drained stream, but pin
        // the equivalence through the public APIs anyway: same records in
        // the same order, same aggregates, for both apps.
        for config in [small_periscope(), {
            let mut c = ScenarioConfig::meerkat_study();
            c.days = 12;
            c.users = 900;
            c
        }] {
            let w = generate(&config);
            let mut stream = generate_streaming(&config);
            let mut streamed = 0usize;
            for (i, record) in (&mut stream).enumerate() {
                let b = &w.broadcasts[i];
                assert_eq!(record.id, b.id);
                assert_eq!(record.broadcaster, b.broadcaster);
                assert_eq!(record.day, b.day);
                assert_eq!(record.start, b.start);
                assert_eq!(record.duration, b.duration);
                assert_eq!(record.viewers, b.viewers);
                assert_eq!(record.hearts, b.hearts);
                streamed += 1;
            }
            assert_eq!(streamed as u64, w.total_broadcasts());
            let summary = stream.into_summary();
            assert_eq!(summary.user_views, w.user_views);
            assert_eq!(summary.user_creates, w.user_creates);
            assert_eq!(summary.daily.len(), w.daily.len());
            for (s, m) in summary.daily.iter().zip(&w.daily) {
                assert_eq!(s.broadcasts, m.broadcasts);
                assert_eq!(s.active_viewers, m.active_viewers);
                assert_eq!(s.active_broadcasters, m.active_broadcasters);
            }
        }
    }

    #[test]
    fn records_are_pure_functions_of_their_slot() {
        // The sharded replay's whole correctness story: expanding a slot
        // must not depend on sampling order, interleaving, or which other
        // slots were expanded. Sample the schedule forward and backward
        // and get the same bytes.
        let config = small_periscope();
        let pool = RngPool::new(config.seed);
        let graph = default_graph(&config, &pool);
        let sampler = RecordSampler::new(&config);
        let slots: Vec<ScheduledBroadcast> = ScheduleStream::new(&config).collect();
        let forward: Vec<BroadcastRecord> = slots
            .iter()
            .map(|&s| sampler.sample(s, graph.in_degree(s.broadcaster) as u64, |_| {}))
            .collect();
        let mut backward: Vec<BroadcastRecord> = slots
            .iter()
            .rev()
            .map(|&s| sampler.sample(s, graph.in_degree(s.broadcaster) as u64, |_| {}))
            .collect();
        backward.reverse();
        assert_eq!(forward, backward);
        // And the composed stream yields exactly these records.
        let streamed: Vec<BroadcastRecord> = generate_streaming(&config).collect();
        assert_eq!(forward, streamed);
    }

    #[test]
    fn schedule_matches_stream_prefix() {
        // The schedule's (id, day, broadcaster) triples are exactly the
        // stream's, in order.
        let config = small_periscope();
        let slots: Vec<ScheduledBroadcast> = ScheduleStream::new(&config).collect();
        let records: Vec<BroadcastRecord> = generate_streaming(&config).collect();
        assert_eq!(slots.len(), records.len());
        for (s, r) in slots.iter().zip(&records) {
            assert_eq!((s.id, s.day, s.broadcaster), (r.id, r.day, r.broadcaster));
        }
    }

    #[test]
    fn stream_memory_is_independent_of_record_count() {
        // Same population, 4× the days (so ~4× the records): tracked
        // bytes may grow only by the per-day aggregates, never with the
        // record count.
        let short = small_periscope();
        let mut long = small_periscope();
        long.days *= 4;
        let mut s1 = generate_streaming(&short);
        for _ in &mut s1 {}
        let mut s2 = generate_streaming(&long);
        for _ in &mut s2 {}
        let per_day_growth = (long.days - short.days) as usize * std::mem::size_of::<DayStats>();
        assert!(
            s2.tracked_bytes() <= s1.tracked_bytes() + per_day_growth,
            "stream state grew with record count: {} vs {}",
            s2.tracked_bytes(),
            s1.tracked_bytes()
        );
    }

    #[test]
    fn summary_drains_unread_records() {
        // Taking the summary early must still account every record.
        let config = small_periscope();
        let w = generate(&config);
        let summary = generate_streaming(&config).into_summary();
        assert_eq!(summary.total_broadcasts(), w.total_broadcasts());
        assert_eq!(summary.mobile_views(), w.mobile_views());
        assert_eq!(summary.unique_viewers(), w.unique_viewers());
        assert_eq!(summary.unique_broadcasters(), w.unique_broadcasters());
    }

    #[test]
    fn record_invariants_hold() {
        let w = generate(&small_periscope());
        assert!(w.total_broadcasts() > 500);
        let mut last_id = 0;
        for b in &w.broadcasts {
            assert!(b.id > last_id, "ids must be strictly increasing");
            last_id = b.id;
            assert!(b.mobile_viewers <= b.viewers);
            assert!(b.hls_viewers <= b.viewers);
            assert!((b.broadcaster as usize) < w.config.users);
            assert!(b.day < w.config.days);
            assert_eq!(
                b.day as u64,
                b.start.as_micros() / (arrivals::DAY_SECS * 1_000_000)
            );
        }
    }

    #[test]
    fn daily_stats_are_consistent_with_records() {
        let w = generate(&small_periscope());
        for (day, stats) in w.daily.iter().enumerate() {
            let records = w.broadcasts.iter().filter(|b| b.day == day as u32).count() as u64;
            assert_eq!(stats.broadcasts, records, "day {day}");
            assert!(stats.active_broadcasters <= stats.broadcasts.max(1));
        }
    }

    #[test]
    fn viewer_to_broadcaster_ratio_is_near_ten() {
        // Fig 2's headline: daily active viewers ≈ 10× daily active
        // broadcasters on Periscope.
        let w = generate(&small_periscope());
        let (mut viewers, mut broadcasters) = (0.0, 0.0);
        for d in &w.daily {
            viewers += d.active_viewers as f64;
            broadcasters += d.active_broadcasters as f64;
        }
        let ratio = viewers / broadcasters;
        assert!(
            (4.0..25.0).contains(&ratio),
            "viewer:broadcaster ratio {ratio}"
        );
    }

    #[test]
    fn user_tallies_match_broadcast_totals() {
        let w = generate(&small_periscope());
        let views_from_users: u64 = w.user_views.iter().map(|&v| v as u64).sum();
        assert_eq!(views_from_users, w.mobile_views());
        let creates_from_users: u64 = w.user_creates.iter().map(|&c| c as u64).sum();
        assert_eq!(creates_from_users, w.total_broadcasts());
    }

    #[test]
    fn viewing_activity_is_skewed_like_fig6() {
        let w = generate(&small_periscope());
        let mut views: Vec<u32> = w.user_views.iter().copied().filter(|&v| v > 0).collect();
        views.sort_unstable();
        let median = views[views.len() / 2] as f64;
        let top = views[(views.len() as f64 * 0.85) as usize] as f64;
        assert!(
            top >= median * 3.0,
            "top-15% threshold {top} vs median {median} — not skewed enough"
        );
    }

    #[test]
    fn meerkat_generates_mostly_empty_broadcasts() {
        let mut config = ScenarioConfig::meerkat_study();
        config.days = 10;
        config.users = 800;
        let w = generate(&config);
        let zero = w.broadcasts.iter().filter(|b| b.viewers == 0).count() as f64
            / w.total_broadcasts() as f64;
        assert!((0.5..0.7).contains(&zero), "zero fraction {zero}");
    }

    #[test]
    fn followers_correlate_with_viewers() {
        // Fig 7's qualitative claim, tested via rank buckets: broadcasts
        // by the most-followed decile must out-draw the least-followed.
        let w = generate(&small_periscope());
        let mut with_followers: Vec<(u64, u64)> = w
            .broadcasts
            .iter()
            .map(|b| (b.followers, b.viewers))
            .collect();
        with_followers.sort_by_key(|&(f, _)| f);
        let n = with_followers.len();
        // Medians, not means: the organic power-law tail throws 10K-viewer
        // outliers into every follower bucket (that is Fig 7's scatter),
        // but the *typical* audience must track follower count.
        let median = |slice: &[(u64, u64)]| {
            let mut v: Vec<u64> = slice.iter().map(|&(_, v)| v).collect();
            v.sort_unstable();
            v[v.len() / 2] as f64
        };
        let bottom = median(&with_followers[..n / 2]);
        let top = median(&with_followers[9 * n / 10..]);
        assert!(
            top >= bottom * 2.0,
            "top-decile median audience {top} vs bottom-half {bottom}"
        );
    }

    #[test]
    fn supplied_graph_must_match_population() {
        let config = small_periscope();
        let pool = RngPool::new(1);
        let wrong = DiGraph::generate(
            &GraphSpec {
                nodes: 10,
                kind: GraphKind::Follow(FollowParams {
                    mean_follows: 2.0,
                    preferential_bias: 0.5,
                    triadic_closure: 0.2,
                    disassortative_passes: 0.0,
                }),
            },
            pool.stream_seed("x"),
        );
        let result = std::panic::catch_unwind(|| generate_with_graph(&config, Some(&wrong)));
        assert!(result.is_err());
    }
}
