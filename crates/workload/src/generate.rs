//! The workload integrator: turns a [`ScenarioConfig`] into broadcast
//! records — either materialized as a full [`Workload`] or streamed one
//! record at a time through [`BroadcastStream`], which is the
//! bounded-memory path the longitudinal replay uses (DESIGN.md §10).
//!
//! Both paths are the *same* generator: [`generate_with_graph`] drains a
//! [`BroadcastStream`] into a `Vec`, so record sequences, RNG
//! consumption, and daily aggregates are identical by construction.

use rand::rngs::SmallRng;
use rand::Rng;

use livescope_graph::{DiGraph, FollowParams, GraphKind, GraphSpec};
use livescope_sim::{dist, RngPool};

use crate::arrivals;
use crate::bitset::FixedBitset;
use crate::duration::sample_duration;
use crate::interactions::sample_interactions;
use crate::popularity::sample_audience;
use crate::scenario::{App, ScenarioConfig};
use crate::types::{BroadcastRecord, DayStats, Workload, WorkloadSummary};

/// Pareto exponent of broadcast-creation propensity (Fig 6 "create" lines:
/// a small cadre of users produces most broadcasts).
const CREATOR_ALPHA: f64 = 1.30;

/// Generates the complete workload for a scenario.
pub fn generate(config: &ScenarioConfig) -> Workload {
    generate_with_graph(config, None)
}

/// Like [`generate`] but accepts a pre-built follow graph (the Table 2 /
/// Fig 7 experiments reuse one graph across analyses).
pub fn generate_with_graph(config: &ScenarioConfig, graph: Option<&DiGraph>) -> Workload {
    let mut stream = match graph {
        Some(g) => generate_streaming_with_graph(config, g),
        None => generate_streaming(config),
    };
    let mut broadcasts = Vec::new();
    for record in &mut stream {
        broadcasts.push(record);
    }
    let summary = stream.into_summary();
    Workload {
        config: summary.config,
        broadcasts,
        daily: summary.daily,
        user_views: summary.user_views,
        user_creates: summary.user_creates,
    }
}

/// Streaming variant of [`generate`]: yields every [`BroadcastRecord`] in
/// deterministic `(day, seq)` order without ever materializing the
/// `broadcasts` vector. The stream owns its follow graph.
pub fn generate_streaming(config: &ScenarioConfig) -> BroadcastStream<'static> {
    config.validate().expect("invalid ScenarioConfig");
    let pool = RngPool::new(config.seed);
    let graph = default_graph(config, &pool);
    BroadcastStream::new(config, GraphRef::Owned(graph), pool)
}

/// Like [`generate_streaming`] but borrowing a pre-built follow graph.
pub fn generate_streaming_with_graph<'a>(
    config: &ScenarioConfig,
    graph: &'a DiGraph,
) -> BroadcastStream<'a> {
    config.validate().expect("invalid ScenarioConfig");
    assert_eq!(
        graph.node_count(),
        config.users,
        "supplied graph must cover the user population"
    );
    let pool = RngPool::new(config.seed);
    BroadcastStream::new(config, GraphRef::Borrowed(graph), pool)
}

/// Owned-or-borrowed follow graph behind a [`BroadcastStream`].
enum GraphRef<'a> {
    /// Graph built by the stream itself (the default path).
    Owned(DiGraph),
    /// Caller-supplied graph shared across analyses.
    Borrowed(&'a DiGraph),
}

impl GraphRef<'_> {
    fn get(&self) -> &DiGraph {
        match self {
            GraphRef::Owned(g) => g,
            GraphRef::Borrowed(g) => g,
        }
    }
}

/// An iterator of [`BroadcastRecord`]s in `(day, seq)` order.
///
/// Holds `O(users + days)` state: the propensity tables, the per-user
/// tallies, per-day aggregates, and two reusable [`FixedBitset`]s for
/// distinct-user counting. Record order and RNG consumption are
/// *identical* to the historical materializing generator: each `next()`
/// performs exactly the sampler calls the old inner loop did, in the same
/// sequence, against the same forked stream.
///
/// Drive it to exhaustion, then call [`BroadcastStream::into_summary`]
/// for the daily/user aggregates (a [`WorkloadSummary`]).
pub struct BroadcastStream<'a> {
    config: ScenarioConfig,
    graph: GraphRef<'a>,
    creator_cum: Vec<f64>,
    viewer_cum: Vec<f64>,
    rng: SmallRng,
    user_views: Vec<u32>,
    user_creates: Vec<u32>,
    daily: Vec<DayStats>,
    day_viewers: FixedBitset,
    day_broadcasters: FixedBitset,
    /// Day currently being generated (== `daily.len()` while mid-day).
    day: u32,
    /// Broadcasts still to yield for the current day.
    remaining_today: u64,
    /// Broadcast count sampled for the current day (for its `DayStats`).
    day_count: u64,
    /// True between sampling a day's count and pushing its `DayStats`.
    day_open: bool,
    next_id: u64,
}

impl<'a> BroadcastStream<'a> {
    fn new(config: &ScenarioConfig, graph: GraphRef<'a>, pool: RngPool) -> BroadcastStream<'a> {
        let creator_cum = propensity_cumulative(
            &mut pool.fork("creator-propensity"),
            config.users,
            CREATOR_ALPHA,
            config.creator_inactive_fraction,
        );
        let viewer_cum = lognormal_cumulative(
            &mut pool.fork("viewer-propensity"),
            config.users,
            config.viewer_activity_sigma,
            config.viewer_inactive_fraction,
        );
        BroadcastStream {
            config: config.clone(),
            graph,
            creator_cum,
            viewer_cum,
            rng: pool.fork("broadcasts"),
            user_views: vec![0u32; config.users],
            user_creates: vec![0u32; config.users],
            daily: Vec::with_capacity(config.days as usize),
            day_viewers: FixedBitset::new(config.users),
            day_broadcasters: FixedBitset::new(config.users),
            day: 0,
            remaining_today: 0,
            day_count: 0,
            day_open: false,
            next_id: 1,
        }
    }

    /// The scenario being generated.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The follow graph backing follower counts.
    pub fn graph(&self) -> &DiGraph {
        self.graph.get()
    }

    /// Closes out the current day: records its aggregates and resets the
    /// distinct-user bitsets (keeping their allocations).
    fn finish_day(&mut self) {
        self.daily.push(DayStats {
            day: self.day,
            broadcasts: self.day_count,
            active_viewers: self.day_viewers.len() as u64,
            active_broadcasters: self.day_broadcasters.len() as u64,
        });
        self.day_viewers.clear();
        self.day_broadcasters.clear();
        self.day += 1;
        self.day_open = false;
    }

    /// Consumes the stream, draining any unread records, and returns the
    /// accumulated aggregates.
    pub fn into_summary(mut self) -> WorkloadSummary {
        for _ in &mut self {}
        WorkloadSummary {
            config: self.config,
            daily: self.daily,
            user_views: self.user_views,
            user_creates: self.user_creates,
        }
    }

    /// Bytes of heap + inline storage held by the stream's accumulators
    /// and sampler tables — `O(users + days)`, independent of how many
    /// records have been yielded. The follow graph (an input, shared
    /// across paths) is accounted separately by the bench.
    pub fn tracked_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.creator_cum.capacity() * std::mem::size_of::<f64>()
            + self.viewer_cum.capacity() * std::mem::size_of::<f64>()
            + self.user_views.capacity() * std::mem::size_of::<u32>()
            + self.user_creates.capacity() * std::mem::size_of::<u32>()
            + self.daily.capacity() * std::mem::size_of::<DayStats>()
            + self.day_viewers.tracked_bytes()
            + self.day_broadcasters.tracked_bytes()
    }
}

impl Iterator for BroadcastStream<'_> {
    type Item = BroadcastRecord;

    fn next(&mut self) -> Option<BroadcastRecord> {
        while self.remaining_today == 0 {
            if self.day_open {
                self.finish_day();
            }
            if self.day >= self.config.days {
                return None;
            }
            self.day_count =
                arrivals::sample_daily_broadcasts(&mut self.rng, &self.config, self.day);
            self.remaining_today = self.day_count;
            self.day_open = true;
        }

        let broadcaster = weighted_pick(&self.creator_cum, &mut self.rng);
        let followers = self.graph.get().in_degree(broadcaster) as u64;
        let start = arrivals::sample_start_time(&mut self.rng, self.day);
        let dur = sample_duration(&mut self.rng, &self.config);
        let audience = sample_audience(&mut self.rng, &self.config, followers);
        let inter = sample_interactions(
            &mut self.rng,
            &self.config,
            audience.total,
            dur.as_secs_f64(),
        );
        self.user_creates[broadcaster as usize] += 1;
        self.day_broadcasters.insert(broadcaster);
        // Attribute mobile views to registered users for Fig 6 /
        // Table 1 unique-viewer accounting.
        for _ in 0..audience.mobile {
            let viewer = weighted_pick(&self.viewer_cum, &mut self.rng);
            self.user_views[viewer as usize] += 1;
            self.day_viewers.insert(viewer);
        }
        let record = BroadcastRecord {
            id: self.next_id,
            broadcaster,
            day: self.day,
            start,
            duration: dur,
            followers,
            viewers: audience.total,
            mobile_viewers: audience.mobile,
            hls_viewers: audience.hls,
            hearts: inter.hearts,
            comments: inter.comments,
        };
        self.next_id += 1;
        self.remaining_today -= 1;
        Some(record)
    }
}

/// The scenario's default follow-graph recipe: Periscope-like for
/// Periscope, sparser for Meerkat (whose graph "was not fully connected",
/// §3.1). Benches that want build statistics generate from this spec
/// themselves (seeded with [`default_graph_seed`]) and hand the graph to
/// [`generate_streaming_with_graph`].
pub fn default_graph_spec(config: &ScenarioConfig) -> GraphSpec {
    match config.app {
        App::Periscope => GraphSpec::periscope().with_nodes(config.users),
        App::Meerkat => GraphSpec {
            nodes: config.users,
            kind: GraphKind::Follow(FollowParams {
                mean_follows: 4.0,
                preferential_bias: 0.7,
                triadic_closure: 0.2,
                disassortative_passes: 1.0,
            }),
        },
    }
}

/// The seed [`generate_streaming`] uses for its owned graph. External
/// builders must use this seed for the workload to be identical to the
/// owned-graph path.
pub fn default_graph_seed(config: &ScenarioConfig) -> u64 {
    RngPool::new(config.seed).stream_seed("graph")
}

/// The scenario's default follow graph, built from [`default_graph_spec`].
pub fn default_graph(config: &ScenarioConfig, pool: &RngPool) -> DiGraph {
    DiGraph::generate(&default_graph_spec(config), pool.stream_seed("graph"))
}

/// Builds a cumulative-weight table of Pareto propensities for weighted
/// user sampling. A user is entirely inactive (zero weight — never
/// sampled) with probability `inactive_fraction`, which is what keeps the
/// Table 1 "unique viewers/broadcasters" counts below the registered
/// population, as in the paper.
fn propensity_cumulative(
    rng: &mut SmallRng,
    users: usize,
    alpha: f64,
    inactive_fraction: f64,
) -> Vec<f64> {
    let mut cum = Vec::with_capacity(users);
    let mut total = 0.0;
    for _ in 0..users {
        if !rng.gen_bool(inactive_fraction) {
            total += dist::pareto(rng, 1.0, alpha);
        }
        cum.push(total);
    }
    assert!(total > 0.0, "every user is inactive — population too small");
    cum
}

/// Like [`propensity_cumulative`] but with lognormal weights.
fn lognormal_cumulative(
    rng: &mut SmallRng,
    users: usize,
    sigma: f64,
    inactive_fraction: f64,
) -> Vec<f64> {
    let mut cum = Vec::with_capacity(users);
    let mut total = 0.0;
    for _ in 0..users {
        if !rng.gen_bool(inactive_fraction) {
            total += dist::log_normal(rng, 0.0, sigma);
        }
        cum.push(total);
    }
    assert!(total > 0.0, "every user is inactive — population too small");
    cum
}

/// Samples a user id proportional to its propensity weight.
fn weighted_pick(cumulative: &[f64], rng: &mut SmallRng) -> u32 {
    let total = *cumulative.last().expect("non-empty propensity table");
    let needle = rng.gen_range(0.0..total);
    cumulative.partition_point(|&c| c <= needle) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_periscope() -> ScenarioConfig {
        ScenarioConfig {
            days: 21,
            users: 3_000,
            base_daily_broadcasts: 60.0,
            ..ScenarioConfig::periscope_study()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = small_periscope();
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.total_broadcasts(), b.total_broadcasts());
        assert_eq!(a.total_views(), b.total_views());
        assert_eq!(a.user_views, b.user_views);
        let mut c2 = config.clone();
        c2.seed ^= 1;
        let c = generate(&c2);
        assert_ne!(a.total_views(), c.total_views());
    }

    #[test]
    fn streaming_matches_materialized() {
        // The materialized path is literally the drained stream, but pin
        // the equivalence through the public APIs anyway: same records in
        // the same order, same aggregates, for both apps.
        for config in [small_periscope(), {
            let mut c = ScenarioConfig::meerkat_study();
            c.days = 12;
            c.users = 900;
            c
        }] {
            let w = generate(&config);
            let mut stream = generate_streaming(&config);
            let mut streamed = 0usize;
            for (i, record) in (&mut stream).enumerate() {
                let b = &w.broadcasts[i];
                assert_eq!(record.id, b.id);
                assert_eq!(record.broadcaster, b.broadcaster);
                assert_eq!(record.day, b.day);
                assert_eq!(record.start, b.start);
                assert_eq!(record.duration, b.duration);
                assert_eq!(record.viewers, b.viewers);
                assert_eq!(record.hearts, b.hearts);
                streamed += 1;
            }
            assert_eq!(streamed as u64, w.total_broadcasts());
            let summary = stream.into_summary();
            assert_eq!(summary.user_views, w.user_views);
            assert_eq!(summary.user_creates, w.user_creates);
            assert_eq!(summary.daily.len(), w.daily.len());
            for (s, m) in summary.daily.iter().zip(&w.daily) {
                assert_eq!(s.broadcasts, m.broadcasts);
                assert_eq!(s.active_viewers, m.active_viewers);
                assert_eq!(s.active_broadcasters, m.active_broadcasters);
            }
        }
    }

    #[test]
    fn stream_memory_is_independent_of_record_count() {
        // Same population, 4× the days (so ~4× the records): tracked
        // bytes may grow only by the per-day aggregates, never with the
        // record count.
        let short = small_periscope();
        let mut long = small_periscope();
        long.days *= 4;
        let mut s1 = generate_streaming(&short);
        for _ in &mut s1 {}
        let mut s2 = generate_streaming(&long);
        for _ in &mut s2 {}
        let per_day_growth = (long.days - short.days) as usize * std::mem::size_of::<DayStats>();
        assert!(
            s2.tracked_bytes() <= s1.tracked_bytes() + per_day_growth,
            "stream state grew with record count: {} vs {}",
            s2.tracked_bytes(),
            s1.tracked_bytes()
        );
    }

    #[test]
    fn summary_drains_unread_records() {
        // Taking the summary early must still account every record.
        let config = small_periscope();
        let w = generate(&config);
        let summary = generate_streaming(&config).into_summary();
        assert_eq!(summary.total_broadcasts(), w.total_broadcasts());
        assert_eq!(summary.mobile_views(), w.mobile_views());
        assert_eq!(summary.unique_viewers(), w.unique_viewers());
        assert_eq!(summary.unique_broadcasters(), w.unique_broadcasters());
    }

    #[test]
    fn record_invariants_hold() {
        let w = generate(&small_periscope());
        assert!(w.total_broadcasts() > 500);
        let mut last_id = 0;
        for b in &w.broadcasts {
            assert!(b.id > last_id, "ids must be strictly increasing");
            last_id = b.id;
            assert!(b.mobile_viewers <= b.viewers);
            assert!(b.hls_viewers <= b.viewers);
            assert!((b.broadcaster as usize) < w.config.users);
            assert!(b.day < w.config.days);
            assert_eq!(
                b.day as u64,
                b.start.as_micros() / (arrivals::DAY_SECS * 1_000_000)
            );
        }
    }

    #[test]
    fn daily_stats_are_consistent_with_records() {
        let w = generate(&small_periscope());
        for (day, stats) in w.daily.iter().enumerate() {
            let records = w.broadcasts.iter().filter(|b| b.day == day as u32).count() as u64;
            assert_eq!(stats.broadcasts, records, "day {day}");
            assert!(stats.active_broadcasters <= stats.broadcasts.max(1));
        }
    }

    #[test]
    fn viewer_to_broadcaster_ratio_is_near_ten() {
        // Fig 2's headline: daily active viewers ≈ 10× daily active
        // broadcasters on Periscope.
        let w = generate(&small_periscope());
        let (mut viewers, mut broadcasters) = (0.0, 0.0);
        for d in &w.daily {
            viewers += d.active_viewers as f64;
            broadcasters += d.active_broadcasters as f64;
        }
        let ratio = viewers / broadcasters;
        assert!(
            (4.0..25.0).contains(&ratio),
            "viewer:broadcaster ratio {ratio}"
        );
    }

    #[test]
    fn user_tallies_match_broadcast_totals() {
        let w = generate(&small_periscope());
        let views_from_users: u64 = w.user_views.iter().map(|&v| v as u64).sum();
        assert_eq!(views_from_users, w.mobile_views());
        let creates_from_users: u64 = w.user_creates.iter().map(|&c| c as u64).sum();
        assert_eq!(creates_from_users, w.total_broadcasts());
    }

    #[test]
    fn viewing_activity_is_skewed_like_fig6() {
        let w = generate(&small_periscope());
        let mut views: Vec<u32> = w.user_views.iter().copied().filter(|&v| v > 0).collect();
        views.sort_unstable();
        let median = views[views.len() / 2] as f64;
        let top = views[(views.len() as f64 * 0.85) as usize] as f64;
        assert!(
            top >= median * 3.0,
            "top-15% threshold {top} vs median {median} — not skewed enough"
        );
    }

    #[test]
    fn meerkat_generates_mostly_empty_broadcasts() {
        let mut config = ScenarioConfig::meerkat_study();
        config.days = 10;
        config.users = 800;
        let w = generate(&config);
        let zero = w.broadcasts.iter().filter(|b| b.viewers == 0).count() as f64
            / w.total_broadcasts() as f64;
        assert!((0.5..0.7).contains(&zero), "zero fraction {zero}");
    }

    #[test]
    fn followers_correlate_with_viewers() {
        // Fig 7's qualitative claim, tested via rank buckets: broadcasts
        // by the most-followed decile must out-draw the least-followed.
        let w = generate(&small_periscope());
        let mut with_followers: Vec<(u64, u64)> = w
            .broadcasts
            .iter()
            .map(|b| (b.followers, b.viewers))
            .collect();
        with_followers.sort_by_key(|&(f, _)| f);
        let n = with_followers.len();
        // Medians, not means: the organic power-law tail throws 10K-viewer
        // outliers into every follower bucket (that is Fig 7's scatter),
        // but the *typical* audience must track follower count.
        let median = |slice: &[(u64, u64)]| {
            let mut v: Vec<u64> = slice.iter().map(|&(_, v)| v).collect();
            v.sort_unstable();
            v[v.len() / 2] as f64
        };
        let bottom = median(&with_followers[..n / 2]);
        let top = median(&with_followers[9 * n / 10..]);
        assert!(
            top >= bottom * 2.0,
            "top-decile median audience {top} vs bottom-half {bottom}"
        );
    }

    #[test]
    fn supplied_graph_must_match_population() {
        let config = small_periscope();
        let pool = RngPool::new(1);
        let wrong = DiGraph::generate(
            &GraphSpec {
                nodes: 10,
                kind: GraphKind::Follow(FollowParams {
                    mean_follows: 2.0,
                    preferential_bias: 0.5,
                    triadic_closure: 0.2,
                    disassortative_passes: 0.0,
                }),
            },
            pool.stream_seed("x"),
        );
        let result = std::panic::catch_unwind(|| generate_with_graph(&config, Some(&wrong)));
        assert!(result.is_err());
    }
}
