//! # livescope-workload — calibrated synthetic Periscope/Meerkat workloads
//!
//! The paper's §3 characterizes two real workloads: Periscope over 97 days
//! (19.6M broadcasts, 705M views) and Meerkat over 34 days (164K
//! broadcasts, 3.8M views). Those services are gone; this crate generates
//! synthetic workloads whose *distributions* reproduce every §3 figure:
//!
//! | Paper result | Module | Mechanism |
//! |---|---|---|
//! | Fig 1 daily broadcasts (3× growth, weekend peaks, Android jump, Meerkat decline) | [`arrivals`] | exponential trend × weekly pattern × launch jump, Poisson day counts |
//! | Fig 2 daily active users (≈10:1 viewer:broadcaster) | [`generate()`](generate::generate) | per-day distinct-user accounting |
//! | Fig 3 broadcast length CDF (85% < 10 min) | [`duration`] | lognormal, Meerkat-heavier tail |
//! | Fig 4 viewers per broadcast (Meerkat 60% zero; Periscope ≤100K) | [`popularity`] | zero-inflated truncated power law + follower-notification joins |
//! | Fig 5 hearts & comments per broadcast (comment cap at ~100 commenters) | [`interactions`] | per-viewer heart process; commenter cap × per-commenter comments |
//! | Fig 6 per-user activity skew | [`generate()`](generate::generate) | power-law viewing/creation propensities |
//! | Fig 7 followers vs. viewers correlation | [`popularity`] + `livescope-graph` | notification joins are binomial in follower count |
//! | Table 1 dataset totals | [`scenario`] presets + [`generate()`](generate::generate) | everything above, integrated |
//!
//! Scaled-down by `ScenarioConfig::scale_divisor` (default 1000×) so a
//! full "study" runs in seconds; per-broadcast distributions are *not*
//! scaled, so CDF shapes are comparable with the paper axis-for-axis.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arrivals;
pub mod bitset;
pub mod duration;
pub mod generate;
pub mod interactions;
pub mod popularity;
pub mod scenario;
pub mod types;

pub use bitset::FixedBitset;
pub use generate::{
    default_graph_seed, default_graph_spec, generate, generate_streaming,
    generate_streaming_with_graph, generate_with_graph, BroadcastStream, RecordSampler,
    ScheduleStream, ScheduledBroadcast,
};
pub use scenario::{App, ScenarioConfig};
pub use types::{BroadcastRecord, DayStats, Workload, WorkloadSummary};
