//! Workload data model: what a generated study "measured".

use livescope_sim::{SimDuration, SimTime};

use crate::scenario::ScenarioConfig;

/// One broadcast, as the crawler would record it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BroadcastRecord {
    /// Sequential broadcast id (Periscope assigned ids sequentially at the
    /// time of the study, which is how the paper counted users).
    pub id: u64,
    /// Broadcaster's user id (node id in the follow graph).
    pub broadcaster: u32,
    /// Day index within the study window.
    pub day: u32,
    /// Start instant (day boundary + within-day offset).
    pub start: SimTime,
    /// Broadcast length.
    pub duration: SimDuration,
    /// Broadcaster's follower count at broadcast time.
    pub followers: u64,
    /// Total views, mobile + anonymous web.
    pub viewers: u64,
    /// Views from registered mobile users.
    pub mobile_viewers: u64,
    /// Viewers served over HLS (arrivals after the RTMP slots filled).
    pub hls_viewers: u64,
    /// Hearts received.
    pub hearts: u64,
    /// Comments received (bounded by the 100-commenter cap).
    pub comments: u64,
}

impl BroadcastRecord {
    /// End instant of the broadcast.
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }

    /// True if the broadcast is live at `t`.
    pub fn live_at(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end()
    }
}

/// Per-day aggregates (Figs 1 and 2).
#[derive(Clone, Copy, Debug, Default)]
pub struct DayStats {
    /// Day index within the study window.
    pub day: u32,
    /// Broadcasts started this day (Fig 1).
    pub broadcasts: u64,
    /// Distinct registered users who viewed something this day.
    pub active_viewers: u64,
    /// Distinct users who broadcast this day.
    pub active_broadcasters: u64,
}

/// The bounded-memory residue of a generated study: everything
/// [`Workload`] knows except the per-broadcast records themselves.
///
/// This is what [`crate::generate::BroadcastStream`] has accumulated once
/// the record stream is exhausted — `O(users + days)` state, independent
/// of how many broadcasts streamed through (DESIGN.md §10).
#[derive(Clone, Debug)]
pub struct WorkloadSummary {
    /// The scenario that was generated.
    pub config: ScenarioConfig,
    /// Per-day aggregates (Figs 1–2).
    pub daily: Vec<DayStats>,
    /// Mobile views per registered user over the whole study (Fig 6).
    pub user_views: Vec<u32>,
    /// Broadcasts created per user over the whole study (Fig 6).
    pub user_creates: Vec<u32>,
}

impl WorkloadSummary {
    /// Table 1 row: total broadcasts.
    pub fn total_broadcasts(&self) -> u64 {
        self.user_creates.iter().map(|&c| c as u64).sum()
    }

    /// Table 1 row: distinct broadcasters.
    pub fn unique_broadcasters(&self) -> u64 {
        self.user_creates.iter().filter(|&&c| c > 0).count() as u64
    }

    /// Total mobile (registered) views.
    pub fn mobile_views(&self) -> u64 {
        self.user_views.iter().map(|&v| v as u64).sum()
    }

    /// Table 1 row: distinct registered viewers.
    pub fn unique_viewers(&self) -> u64 {
        self.user_views.iter().filter(|&&v| v > 0).count() as u64
    }

    /// Bytes of heap + inline storage (replay memory accounting).
    pub fn tracked_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.daily.capacity() * std::mem::size_of::<DayStats>()
            + self.user_views.capacity() * std::mem::size_of::<u32>()
            + self.user_creates.capacity() * std::mem::size_of::<u32>()
    }
}

/// A complete generated study.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The scenario that produced this study.
    pub config: ScenarioConfig,
    /// Every broadcast record, in `(day, seq)` order.
    pub broadcasts: Vec<BroadcastRecord>,
    /// Per-day aggregates, one entry per study day.
    pub daily: Vec<DayStats>,
    /// Mobile views per registered user over the whole study (Fig 6).
    pub user_views: Vec<u32>,
    /// Broadcasts created per user over the whole study (Fig 6).
    pub user_creates: Vec<u32>,
}

impl Workload {
    /// Table 1 row: total broadcasts.
    pub fn total_broadcasts(&self) -> u64 {
        self.broadcasts.len() as u64
    }

    /// Table 1 row: distinct broadcasters.
    pub fn unique_broadcasters(&self) -> u64 {
        self.user_creates.iter().filter(|&&c| c > 0).count() as u64
    }

    /// Table 1 row: total views (mobile + web).
    pub fn total_views(&self) -> u64 {
        self.broadcasts.iter().map(|b| b.viewers).sum()
    }

    /// Total mobile (registered) views.
    pub fn mobile_views(&self) -> u64 {
        self.broadcasts.iter().map(|b| b.mobile_viewers).sum()
    }

    /// Table 1 row: distinct registered viewers.
    pub fn unique_viewers(&self) -> u64 {
        self.user_views.iter().filter(|&&v| v > 0).count() as u64
    }

    /// Broadcasts with at least one HLS viewer (paper: 5.77% of 19.6M).
    pub fn broadcasts_with_hls(&self) -> u64 {
        self.broadcasts.iter().filter(|b| b.hls_viewers > 0).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> BroadcastRecord {
        BroadcastRecord {
            id: 1,
            broadcaster: 7,
            day: 0,
            start: SimTime::from_secs(100),
            duration: SimDuration::from_secs(60),
            followers: 3,
            viewers: 10,
            mobile_viewers: 7,
            hls_viewers: 0,
            hearts: 4,
            comments: 2,
        }
    }

    #[test]
    fn liveness_window_is_half_open() {
        let b = record();
        assert!(!b.live_at(SimTime::from_secs(99)));
        assert!(b.live_at(SimTime::from_secs(100)));
        assert!(b.live_at(SimTime::from_secs(159)));
        assert!(!b.live_at(SimTime::from_secs(160)));
        assert_eq!(b.end(), SimTime::from_secs(160));
    }

    #[test]
    fn workload_aggregates() {
        let mut b1 = record();
        b1.viewers = 10;
        b1.mobile_viewers = 7;
        b1.hls_viewers = 2;
        let mut b2 = record();
        b2.id = 2;
        b2.viewers = 5;
        b2.mobile_viewers = 3;
        let w = Workload {
            config: crate::scenario::ScenarioConfig::periscope_study(),
            broadcasts: vec![b1, b2],
            daily: vec![],
            user_views: vec![0, 3, 2, 0, 5],
            user_creates: vec![0, 2, 0, 0, 0],
        };
        assert_eq!(w.total_broadcasts(), 2);
        assert_eq!(w.total_views(), 15);
        assert_eq!(w.mobile_views(), 10);
        assert_eq!(w.unique_viewers(), 3);
        assert_eq!(w.unique_broadcasters(), 1);
        assert_eq!(w.broadcasts_with_hls(), 1);
    }
}
