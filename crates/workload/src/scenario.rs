//! Scenario configuration and the two study presets.

use serde::{Deserialize, Serialize};

/// Which service's behaviour a scenario models.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum App {
    /// Twitter's Periscope (97-day study, §3.1).
    Periscope,
    /// Meerkat (34-day study, §3.1).
    Meerkat,
}

impl App {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            App::Periscope => "Periscope",
            App::Meerkat => "Meerkat",
        }
    }
}

/// Everything the workload generator needs. All knobs are plain data so
/// scenarios serialize into figure metadata.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Which service's distributions to reproduce.
    pub app: App,
    /// Length of the measurement window, days.
    pub days: u32,
    /// Registered-user population (already scaled).
    pub users: usize,
    /// How much the paper-scale numbers were divided by (reporting only).
    pub scale_divisor: f64,
    /// Expected broadcasts on day 0 (already scaled).
    pub base_daily_broadcasts: f64,
    /// Multiplier from day 0 to the last day, interpolated exponentially.
    /// Periscope ≈ 3.3 (growth), Meerkat ≈ 0.45 (decline).
    pub total_growth: f64,
    /// Relative weekend boost (Fig 1's weekly sawtooth). 0 disables.
    pub weekly_amplitude: f64,
    /// Day index of the Android launch, if inside the window: a one-time
    /// permanent jump in the trend.
    pub android_launch_day: Option<u32>,
    /// Jump multiplier applied from the launch day onward.
    pub android_jump: f64,
    /// Daily active viewers per active broadcaster (paper: ≈10).
    pub viewer_ratio: f64,
    /// Fraction of registered users who never view in the window
    /// (Periscope: 12M registered vs 7.65M unique viewers ⇒ ≈0.36).
    pub viewer_inactive_fraction: f64,
    /// Lognormal sigma of per-user viewing propensity (Fig 6 skew knob):
    /// top-15%/median view ratio ≈ exp(1.04·sigma).
    pub viewer_activity_sigma: f64,
    /// Fraction of registered users who never broadcast in the window
    /// (Periscope: 1.85M broadcasters of 12M ⇒ ≈0.85).
    pub creator_inactive_fraction: f64,
    /// Fraction of broadcasts with zero viewers (Meerkat ≈0.6, Periscope
    /// near zero).
    pub zero_viewer_fraction: f64,
    /// Power-law exponent of organic viewers per broadcast.
    pub viewer_alpha: f64,
    /// Cap on viewers per broadcast (paper observes up to ~100K).
    pub viewer_max: u64,
    /// Probability a notified follower joins the broadcast (drives Fig 7).
    pub follower_join_prob: f64,
    /// Lognormal parameters of broadcast duration, seconds
    /// (`exp(mu)` = median).
    pub duration_mu: f64,
    /// Lognormal sigma of broadcast duration (tail heaviness).
    pub duration_sigma: f64,
    /// Mean hearts a viewer sends in an engaging broadcast.
    pub hearts_per_viewer: f64,
    /// Mean comments per admitted commenter.
    pub comments_per_commenter: f64,
    /// RTMP viewer slots before handoff to HLS (paper: ~100).
    pub rtmp_slots: u64,
    /// Fraction of views from the mobile app (vs anonymous web):
    /// 482M/705M ≈ 0.68 for Periscope.
    pub mobile_fraction: f64,
    /// Root seed.
    pub seed: u64,
}

impl ScenarioConfig {
    /// The Periscope study: 97 days (May 15 – Aug 20, 2015), scaled 1000×.
    ///
    /// Paper-scale anchors: ~100K broadcasts/day growing past 300K
    /// (Fig 1); 19.6M broadcasts total; 705M views (68% mobile); 12M
    /// registered users; Android launch ~day 11 (May 26).
    pub fn periscope_study() -> Self {
        ScenarioConfig {
            app: App::Periscope,
            days: 97,
            users: 12_000,
            scale_divisor: 1_000.0,
            base_daily_broadcasts: 80.0,
            total_growth: 3.3,
            weekly_amplitude: 0.12,
            android_launch_day: Some(11),
            android_jump: 1.35,
            viewer_ratio: 10.0,
            viewer_inactive_fraction: 0.05,
            viewer_activity_sigma: 2.2,
            creator_inactive_fraction: 0.83,
            zero_viewer_fraction: 0.03,
            viewer_alpha: 1.85,
            viewer_max: 100_000,
            follower_join_prob: 0.10,
            duration_mu: 5.05, // median ≈ 156 s
            duration_sigma: 1.1,
            hearts_per_viewer: 12.0,
            comments_per_commenter: 4.0,
            rtmp_slots: 100,
            mobile_fraction: 0.683,
            seed: 0x5ca1ab1e,
        }
    }

    /// The Meerkat study: 34 days (May 12 – Jun 15, 2015), scaled 100×
    /// (Meerkat was already small).
    ///
    /// Paper-scale anchors: ~8K broadcasts/day dropping below 4K; 164K
    /// broadcasts; 3.8M views; 60% of broadcasts with no viewers at all;
    /// longer-tailed durations.
    pub fn meerkat_study() -> Self {
        ScenarioConfig {
            app: App::Meerkat,
            days: 34,
            users: 1_900,
            scale_divisor: 100.0,
            base_daily_broadcasts: 68.0,
            total_growth: 0.45,
            weekly_amplitude: 0.04,
            android_launch_day: None,
            android_jump: 1.0,
            viewer_ratio: 7.0,
            viewer_inactive_fraction: 0.03,
            viewer_activity_sigma: 1.0,
            creator_inactive_fraction: 0.70,
            zero_viewer_fraction: 0.60,
            viewer_alpha: 1.60,
            viewer_max: 10_000,
            follower_join_prob: 0.05,
            duration_mu: 4.7,
            duration_sigma: 1.45, // heavier tail than Periscope
            hearts_per_viewer: 4.0,
            comments_per_commenter: 2.0,
            rtmp_slots: 100,
            mobile_fraction: 0.82,
            seed: 0x0ddba11,
        }
    }

    /// Sanity-checks the knobs; generators call this first.
    pub fn validate(&self) -> Result<(), String> {
        if self.days == 0 {
            return Err("days must be positive".into());
        }
        if self.users < 2 {
            return Err("need at least two users".into());
        }
        for (name, p) in [
            ("zero_viewer_fraction", self.zero_viewer_fraction),
            ("follower_join_prob", self.follower_join_prob),
            ("mobile_fraction", self.mobile_fraction),
            ("viewer_inactive_fraction", self.viewer_inactive_fraction),
            ("creator_inactive_fraction", self.creator_inactive_fraction),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0,1], got {p}"));
            }
        }
        if self.base_daily_broadcasts <= 0.0 || self.total_growth <= 0.0 {
            return Err("broadcast volume knobs must be positive".into());
        }
        if self.viewer_alpha <= 1.0 {
            return Err("viewer_alpha must exceed 1 for a normalizable tail".into());
        }
        if self.viewer_max == 0 {
            return Err("viewer_max must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        ScenarioConfig::periscope_study().validate().unwrap();
        ScenarioConfig::meerkat_study().validate().unwrap();
    }

    #[test]
    fn presets_match_paper_anchors() {
        let p = ScenarioConfig::periscope_study();
        assert_eq!(p.days, 97);
        assert!(p.total_growth > 3.0, "Periscope tripled daily broadcasts");
        assert_eq!(p.rtmp_slots, 100);
        let m = ScenarioConfig::meerkat_study();
        assert_eq!(m.days, 34);
        assert!(m.total_growth < 0.6, "Meerkat halved daily broadcasts");
        assert!((m.zero_viewer_fraction - 0.6).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = ScenarioConfig::periscope_study();
        c.days = 0;
        assert!(c.validate().is_err());
        let mut c = ScenarioConfig::periscope_study();
        c.zero_viewer_fraction = 1.5;
        assert!(c.validate().is_err());
        let mut c = ScenarioConfig::periscope_study();
        c.viewer_alpha = 0.9;
        assert!(c.validate().is_err());
        let mut c = ScenarioConfig::periscope_study();
        c.total_growth = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_serializes_roundtrip() {
        let c = ScenarioConfig::periscope_study();
        let json = serde_json::to_string(&c).unwrap();
        let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.days, c.days);
        assert_eq!(back.app, c.app);
    }
}
