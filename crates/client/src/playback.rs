//! The §6 playback buffer, exactly as the paper describes the decompiled
//! strategy and evaluates it in trace-driven simulation:
//!
//! > "when the live streaming starts, the client first pre-buffers some
//! > video content (P seconds) ... newly arrived video content \[is\]
//! > organized and played by their sequence numbers ... Arrivals that come
//! > later than their scheduled play time are discarded."
//!
//! Semantics implemented:
//!
//! 1. Playback starts once `P` seconds of contiguous media (from the first
//!    unit) have arrived — or everything arrived, for streams shorter than
//!    `P`.
//! 2. Units play in media order. If the next unit is missing when its turn
//!    comes **and nothing newer is buffered**, the player *stalls*
//!    (rebuffers) until it arrives; the whole subsequent schedule shifts.
//! 3. If the next unit is missing but a **newer unit is already buffered**
//!    (out-of-order straggler), the missing unit is *discarded* and
//!    playback skips ahead — that is the paper's "arrivals later than
//!    their scheduled play time are discarded".
//!
//! The two §6 metrics fall out directly: **stalling ratio** (stalled time
//! over content duration) and **average buffering delay** (arrival →
//! play-out gap, averaged over played units).

use livescope_sim::{SimDuration, SimTime};
use livescope_telemetry::span::viewer_session_span;
use livescope_telemetry::{Protocol, SpanKind, Telemetry, TraceEvent};

/// One received media unit: a frame (RTMP) or a chunk (HLS).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrivedUnit {
    /// Media timestamp (capture time of the first contained frame), µs.
    pub media_ts_us: u64,
    /// Content duration, µs (40 000 for a frame, ~3 000 000 for a chunk).
    pub duration_us: u64,
    /// When the unit landed on the viewer device.
    pub arrival: SimTime,
}

/// Outcome of a playback simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PlaybackReport {
    /// Units played.
    pub played: u64,
    /// Units discarded as out-of-order stragglers.
    pub discarded: u64,
    /// Total stalled (rebuffering) wall time, seconds.
    pub stall_s: f64,
    /// Stall time over content duration: the §6 "stalling ratio".
    pub stall_ratio: f64,
    /// Mean arrival→playout gap over played units, seconds.
    pub avg_buffering_s: f64,
    /// When playback started (pre-buffer filled).
    pub playback_start: SimTime,
}

/// Runs the buffering strategy over an arrival trace.
///
/// `units` may be in any order; they are played by `media_ts_us`. Units
/// absent from the slice simply never arrived (dropped upstream): the
/// player treats the media gap as a discontinuity and plays through it.
pub fn simulate_playback(units: &[ArrivedUnit], prebuffer: SimDuration) -> PlaybackReport {
    if units.is_empty() {
        return PlaybackReport::default();
    }
    let mut media: Vec<ArrivedUnit> = units.to_vec();
    media.sort_by_key(|u| (u.media_ts_us, u.arrival));

    // --- Phase 1: find the playback start instant. -----------------------
    // Content counts toward the pre-buffer only once every earlier unit
    // has arrived (the buffer is played in order, so a hole blocks it).
    let mut prefix_ready = SimTime::ZERO;
    let mut accumulated = SimDuration::ZERO;
    let mut playback_start = None;
    for u in &media {
        prefix_ready = prefix_ready.max(u.arrival);
        accumulated += SimDuration::from_micros(u.duration_us);
        if accumulated >= prebuffer {
            playback_start = Some(prefix_ready);
            break;
        }
    }
    // Shorter than P: start once everything arrived.
    let playback_start = playback_start.unwrap_or(prefix_ready);

    // Suffix-min of arrivals: "is anything newer already buffered?"
    let mut min_arrival_after = vec![SimTime::MAX; media.len() + 1];
    for i in (0..media.len()).rev() {
        min_arrival_after[i] = min_arrival_after[i + 1].min(media[i].arrival);
    }

    // --- Phase 2: play. ---------------------------------------------------
    let mut clock = playback_start;
    let mut played = 0u64;
    let mut discarded = 0u64;
    let mut stall = SimDuration::ZERO;
    let mut buffering_total = 0.0f64;
    let mut content_total = SimDuration::ZERO;
    for (i, u) in media.iter().enumerate() {
        content_total += SimDuration::from_micros(u.duration_us);
        if u.arrival <= clock {
            // In the buffer: plays on schedule.
            buffering_total += clock.saturating_since(u.arrival).as_secs_f64();
            played += 1;
            clock += SimDuration::from_micros(u.duration_us);
        } else if min_arrival_after[i + 1] <= clock {
            // Straggler: newer content is already here — skip it.
            discarded += 1;
        } else {
            // Genuine gap: rebuffer until it arrives.
            stall += u.arrival.saturating_since(clock);
            played += 1;
            clock = u.arrival + SimDuration::from_micros(u.duration_us);
        }
    }
    let content_s = content_total.as_secs_f64();
    PlaybackReport {
        played,
        discarded,
        stall_s: stall.as_secs_f64(),
        stall_ratio: if content_s > 0.0 {
            stall.as_secs_f64() / content_s
        } else {
            0.0
        },
        avg_buffering_s: if played > 0 {
            buffering_total / played as f64
        } else {
            0.0
        },
        playback_start,
    }
}

/// Emits the `JoinPlayout` trace event for a finished playback
/// simulation: the viewer's join, reduced to when playout started and
/// what the buffer cost on average. One call per (viewer, protocol) leg.
pub fn emit_playout(
    telemetry: &Telemetry,
    broadcast: u64,
    viewer: u64,
    protocol: Protocol,
    report: &PlaybackReport,
) {
    telemetry.emit(
        report.playback_start.as_micros(),
        TraceEvent::JoinPlayout {
            broadcast,
            viewer,
            protocol,
            playback_start_us: report.playback_start.as_micros(),
            avg_buffering_us: (report.avg_buffering_s * 1e6).round() as u64,
            stall_us: (report.stall_s * 1e6).round() as u64,
            stall_ratio_ppm: (report.stall_ratio * 1e6).round() as u64,
        },
    );
    // The playout report is the session's last word: close its span at
    // playback start (the QoE-relevant instant the report is stamped
    // with).
    telemetry.emit(
        report.playback_start.as_micros(),
        TraceEvent::SpanClose {
            id: viewer_session_span(broadcast, viewer),
            kind: SpanKind::ViewerSession,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `n` units of 40 ms media arriving with per-unit delays.
    fn trace(delays_ms: &[u64]) -> Vec<ArrivedUnit> {
        delays_ms
            .iter()
            .enumerate()
            .map(|(i, &d)| ArrivedUnit {
                media_ts_us: i as u64 * 40_000,
                duration_us: 40_000,
                arrival: SimTime::from_millis(i as u64 * 40 + d),
            })
            .collect()
    }

    #[test]
    fn empty_trace_is_a_zero_report() {
        assert_eq!(
            simulate_playback(&[], SimDuration::from_secs(1)),
            PlaybackReport::default()
        );
    }

    #[test]
    fn smooth_arrivals_with_zero_prebuffer_never_stall() {
        // Constant delay — playback locks to the arrival cadence.
        let units = trace(&[100; 50]);
        let report = simulate_playback(&units, SimDuration::ZERO);
        assert_eq!(report.played, 50);
        assert_eq!(report.discarded, 0);
        assert_eq!(report.stall_s, 0.0);
        assert_eq!(report.avg_buffering_s, 0.0);
        assert_eq!(report.playback_start, SimTime::from_millis(100));
    }

    #[test]
    fn prebuffer_delays_start_and_adds_buffering() {
        let units = trace(&[100; 100]);
        let p = SimDuration::from_secs(1);
        let report = simulate_playback(&units, p);
        // 1 s of 40 ms units = 25 units; the 25th arrives at 24*40+100.
        assert_eq!(report.playback_start, SimTime::from_millis(24 * 40 + 100));
        assert_eq!(report.stall_s, 0.0);
        // Steady state: every unit waits ≈ P − one unit duration.
        assert!(
            (report.avg_buffering_s - 0.96).abs() < 0.02,
            "avg buffering {}",
            report.avg_buffering_s
        );
    }

    #[test]
    fn jitter_without_prebuffer_causes_stalls() {
        // Every 10th unit is 500 ms late.
        let delays: Vec<u64> = (0..100)
            .map(|i| if i % 10 == 9 { 500 } else { 20 })
            .collect();
        let no_buffer = simulate_playback(&trace(&delays), SimDuration::ZERO);
        let buffered = simulate_playback(&trace(&delays), SimDuration::from_secs(1));
        assert!(no_buffer.stall_s > 0.0, "expected stalls without buffer");
        assert_eq!(
            buffered.stall_s, 0.0,
            "1 s pre-buffer absorbs 500 ms jitter"
        );
        assert!(buffered.avg_buffering_s > no_buffer.avg_buffering_s);
    }

    #[test]
    fn stall_shifts_the_schedule_and_inflates_buffering() {
        // A 5-second uplink stall at unit 50, then a burst: later units
        // arrive promptly but the schedule is now 5 s late, so they sit in
        // the buffer — the Fig 16(b) long-buffering mechanism.
        let mut units = trace(&[50; 200]);
        for u in units.iter_mut().skip(50) {
            u.arrival = u.arrival.max(SimTime::from_millis(50 * 40 + 5_000));
        }
        let report = simulate_playback(&units, SimDuration::from_secs(1));
        assert!(report.stall_s > 3.0, "stall {}", report.stall_s);
        assert!(
            report.avg_buffering_s > 2.0,
            "post-burst buffering should accumulate: {}",
            report.avg_buffering_s
        );
    }

    #[test]
    fn stragglers_are_discarded_not_waited_for() {
        // Unit 10 arrives 2 s late while later units arrive on time: by
        // the time its turn comes, newer content is buffered → discard.
        let mut units = trace(&[10; 50]);
        units[10].arrival = SimTime::from_millis(10 * 40 + 2_000);
        let report = simulate_playback(&units, SimDuration::from_millis(200));
        assert_eq!(report.discarded, 1);
        assert_eq!(report.played, 49);
        assert_eq!(report.stall_s, 0.0, "discard must not stall");
    }

    #[test]
    fn trailing_late_unit_stalls_instead_of_discarding() {
        // The very last unit is late and nothing newer exists → the player
        // must wait (there is nothing to skip ahead to).
        let mut units = trace(&[10; 20]);
        units[19].arrival = SimTime::from_millis(19 * 40 + 3_000);
        let report = simulate_playback(&units, SimDuration::ZERO);
        assert_eq!(report.discarded, 0);
        assert!(report.stall_s > 2.0);
    }

    #[test]
    fn stream_shorter_than_prebuffer_plays_after_full_arrival() {
        let units = trace(&[100; 10]); // 0.4 s of content
        let report = simulate_playback(&units, SimDuration::from_secs(9));
        assert_eq!(report.playback_start, units[9].arrival);
        assert_eq!(report.played, 10);
        assert_eq!(report.stall_s, 0.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut units = trace(&[100; 30]);
        units.reverse();
        let sorted_report = simulate_playback(&trace(&[100; 30]), SimDuration::ZERO);
        let reversed_report = simulate_playback(&units, SimDuration::ZERO);
        assert_eq!(sorted_report, reversed_report);
    }

    #[test]
    fn chunk_scale_traces_work_too() {
        // HLS-ish: 3 s chunks with polling jitter; P=6 s absorbs it.
        let units: Vec<ArrivedUnit> = (0..60u64)
            .map(|i| ArrivedUnit {
                media_ts_us: i * 3_000_000,
                duration_us: 3_000_000,
                arrival: SimTime::from_millis(i * 3_000 + 1_000 + (i % 3) * 900),
            })
            .collect();
        let p0 = simulate_playback(&units, SimDuration::ZERO);
        let p6 = simulate_playback(&units, SimDuration::from_secs(6));
        assert!(p6.stall_ratio <= p0.stall_ratio);
        assert!(p6.avg_buffering_s > p0.avg_buffering_s);
    }
}
