//! Viewer drivers: the RTMP push receiver and the HLS polling loop.
//!
//! Both produce [`ArrivedUnit`] traces for the playback simulator plus the
//! raw timestamps the delay-breakdown experiments need (the paper's
//! ①–⑰ of Fig 10).

use rand::rngs::SmallRng;

use livescope_cdn::ids::{BroadcastId, UserId};
use livescope_cdn::Cluster;
use livescope_net::datacenters::{self, DatacenterId};
use livescope_net::geo::GeoPoint;
use livescope_net::{AccessLink, Link};
use livescope_proto::rtmp::VideoFrame;
use livescope_sim::{SimDuration, SimTime};
use livescope_telemetry::span::{origin_fetch_span, viewer_deliver_span};
use livescope_telemetry::{CounterId, HistogramId, SpanKind, Telemetry, TraceEvent};

use crate::playback::ArrivedUnit;

/// A passive RTMP viewer: records every pushed frame.
#[derive(Debug)]
pub struct RtmpViewer {
    pub user: UserId,
    units: Vec<ArrivedUnit>,
    /// Per-frame `(capture→server, server→device)` delay samples, seconds.
    samples: Vec<(f64, f64)>,
    telemetry: Telemetry,
    /// Broadcast id stamped onto trace events (set by `attach_telemetry`).
    broadcast: u64,
    c_units: CounterId,
    h_last_mile_us: HistogramId,
}

impl RtmpViewer {
    /// A fresh viewer.
    pub fn new(user: UserId) -> Self {
        RtmpViewer {
            user,
            units: Vec::new(),
            samples: Vec::new(),
            telemetry: Telemetry::disabled(),
            broadcast: 0,
            c_units: CounterId::INERT,
            h_last_mile_us: HistogramId::INERT,
        }
    }

    /// Attaches telemetry: a received-unit counter, a last-mile delay
    /// histogram, and an `RtmpUnitDelivered` trace event per frame,
    /// stamped with `broadcast`.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry, broadcast: BroadcastId) {
        self.c_units = telemetry.counter("client.rtmp_units_received");
        self.h_last_mile_us = telemetry.histogram("client.rtmp_last_mile_us");
        self.broadcast = broadcast.0;
        self.telemetry = telemetry.clone();
    }

    /// Records one pushed frame.
    ///
    /// * `capture` — frame capture instant (device clock mapped to sim
    ///   time by the controlled-experiment setup);
    /// * `server_arrival` — when the ingest server received it (②);
    /// * `push_delay` — sampled server→viewer delivery time (③−②).
    pub fn record_push(
        &mut self,
        frame: &VideoFrame,
        capture: SimTime,
        server_arrival: SimTime,
        push_delay: SimDuration,
    ) {
        let arrival = server_arrival + push_delay;
        self.units.push(ArrivedUnit {
            media_ts_us: frame.meta.capture_ts_us,
            duration_us: livescope_proto::rtmp::FRAME_INTERVAL_MS * 1_000,
            arrival,
        });
        self.samples.push((
            server_arrival.saturating_since(capture).as_secs_f64(),
            push_delay.as_secs_f64(),
        ));
        self.telemetry.add(self.c_units, 1);
        self.telemetry
            .record(self.h_last_mile_us, push_delay.as_micros());
        self.telemetry.emit(
            arrival.as_micros(),
            TraceEvent::RtmpUnitDelivered {
                broadcast: self.broadcast,
                viewer: self.user.0,
                seq: frame.meta.sequence,
                upload_us: server_arrival.saturating_since(capture).as_micros(),
                last_mile_us: push_delay.as_micros(),
            },
        );
    }

    /// The arrival trace for playback simulation.
    pub fn units(&self) -> &[ArrivedUnit] {
        &self.units
    }

    /// Mean `(upload, last-mile)` delays over recorded frames, seconds.
    pub fn mean_delays(&self) -> (f64, f64) {
        if self.samples.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.samples.len() as f64;
        let up = self.samples.iter().map(|s| s.0).sum::<f64>() / n;
        let lm = self.samples.iter().map(|s| s.1).sum::<f64>() / n;
        (up, lm)
    }
}

/// Receipt of one HLS chunk at the viewer.
#[derive(Clone, Copy, Debug)]
pub struct ChunkReceipt {
    pub seq: u64,
    /// Media timestamp of the chunk's first frame, µs.
    pub start_ts_us: u64,
    pub duration_us: u64,
    /// When this chunk became available at the POP (⑪).
    pub available_at_pop: SimTime,
    /// The poll that discovered it (⑭).
    pub discovered_at: SimTime,
    /// Arrival on the device after the last-mile transfer (⑮).
    pub arrival: SimTime,
}

/// An active HLS viewer: polls the chunklist on an interval and downloads
/// new chunks.
pub struct HlsViewer {
    pub user: UserId,
    pub pop: DatacenterId,
    broadcast: BroadcastId,
    link: Link,
    have_seq: Option<u64>,
    receipts: Vec<ChunkReceipt>,
    /// Chunklist polls issued.
    pub polls: u64,
    telemetry: Telemetry,
    c_chunks: CounterId,
    h_last_mile_us: HistogramId,
}

impl HlsViewer {
    /// A viewer at `location` watching `broadcast` via its nearest POP.
    pub fn new(
        user: UserId,
        broadcast: BroadcastId,
        pop: DatacenterId,
        location: &GeoPoint,
        access: AccessLink,
    ) -> Self {
        let link = Link::device_path(location, &datacenters::datacenter(pop).location, access);
        HlsViewer {
            user,
            pop,
            broadcast,
            link,
            have_seq: None,
            receipts: Vec::new(),
            polls: 0,
            telemetry: Telemetry::disabled(),
            c_chunks: CounterId::INERT,
            h_last_mile_us: HistogramId::INERT,
        }
    }

    /// Attaches telemetry: a received-chunk counter, a last-mile delay
    /// histogram, and a `ChunkDelivered` trace event per download.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.c_chunks = telemetry.counter("client.hls_chunks_received");
        self.h_last_mile_us = telemetry.histogram("client.hls_last_mile_us");
        self.telemetry = telemetry.clone();
    }

    /// One poll cycle at `now`: fetch the chunklist, download any chunks
    /// newer than what we have. Returns the number of new chunks.
    pub fn poll(&mut self, cluster: &mut Cluster, now: SimTime, rng: &mut SmallRng) -> usize {
        self.polls += 1;
        let Ok(resp) = cluster.poll_hls(now, self.broadcast, self.pop) else {
            return 0;
        };
        let mut new_chunks = 0;
        for entry in &resp.chunklist.entries {
            if self.have_seq.is_some_and(|have| entry.seq <= have) {
                continue;
            }
            let Some(chunk) = cluster.download_chunk(now, self.broadcast, self.pop, entry.seq)
            else {
                continue;
            };
            let available_at_pop = cluster.fastly[(self.pop.0 - 8) as usize]
                .availability(self.broadcast, entry.seq)
                .expect("downloaded chunk must have an availability record");
            let transfer = self
                .link
                .transmit(rng, now, chunk.payload_bytes())
                .delay()
                // A dropped chunk transfer in HLS is retried by TCP; model
                // as a slow arrival one interval later.
                .unwrap_or(SimDuration::from_secs(2));
            let arrival = now + transfer;
            self.receipts.push(ChunkReceipt {
                seq: chunk.seq,
                start_ts_us: chunk.start_ts_us,
                duration_us: chunk.duration_us,
                available_at_pop,
                discovered_at: now,
                arrival,
            });
            self.telemetry.add(self.c_chunks, 1);
            self.telemetry
                .record(self.h_last_mile_us, transfer.as_micros());
            self.telemetry.emit(
                arrival.as_micros(),
                TraceEvent::ChunkDelivered {
                    broadcast: self.broadcast.0,
                    viewer: self.user.0,
                    seq: chunk.seq,
                    pop: self.pop.0,
                    available_at_pop_us: available_at_pop.as_micros(),
                    discovered_us: now.as_micros(),
                    arrival_us: arrival.as_micros(),
                    duration_us: chunk.duration_us,
                },
            );
            let span = viewer_deliver_span(self.broadcast.0, chunk.seq, self.user.0);
            self.telemetry.emit(
                now.as_micros(),
                TraceEvent::SpanOpen {
                    id: span,
                    parent: origin_fetch_span(self.broadcast.0, chunk.seq, self.pop.0),
                    kind: SpanKind::ViewerDeliver,
                    broadcast: self.broadcast.0,
                    subject: self.user.0,
                    site: self.pop.0,
                },
            );
            self.telemetry.emit(
                arrival.as_micros(),
                TraceEvent::SpanClose {
                    id: span,
                    kind: SpanKind::ViewerDeliver,
                },
            );
            self.have_seq = Some(chunk.seq);
            new_chunks += 1;
        }
        new_chunks
    }

    /// All chunk receipts, in download order.
    pub fn receipts(&self) -> &[ChunkReceipt] {
        &self.receipts
    }

    /// The arrival trace for playback simulation.
    pub fn units(&self) -> Vec<ArrivedUnit> {
        self.receipts
            .iter()
            .map(|r| ArrivedUnit {
                media_ts_us: r.start_ts_us,
                duration_us: r.duration_us,
                arrival: r.arrival,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use livescope_sim::RngPool;
    use rand::SeedableRng;

    fn sf() -> GeoPoint {
        GeoPoint::new(37.77, -122.42)
    }

    fn frame(seq: u64) -> VideoFrame {
        VideoFrame::new(
            seq,
            seq * 40_000,
            seq.is_multiple_of(50),
            Bytes::from(vec![1u8; 2_500]),
        )
    }

    #[test]
    fn rtmp_viewer_accumulates_units_and_delays() {
        let mut v = RtmpViewer::new(UserId(7));
        for i in 0..10u64 {
            let capture = SimTime::from_millis(i * 40);
            let server = capture + SimDuration::from_millis(30);
            v.record_push(&frame(i), capture, server, SimDuration::from_millis(25));
        }
        assert_eq!(v.units().len(), 10);
        let (up, lm) = v.mean_delays();
        assert!((up - 0.030).abs() < 1e-9);
        assert!((lm - 0.025).abs() < 1e-9);
        assert_eq!(v.units()[3].arrival, SimTime::from_millis(3 * 40 + 55));
    }

    #[test]
    fn empty_rtmp_viewer_reports_zero() {
        let v = RtmpViewer::new(UserId(1));
        assert_eq!(v.mean_delays(), (0.0, 0.0));
    }

    #[test]
    fn hls_viewer_downloads_chunks_through_a_real_cluster() {
        let pool = RngPool::new(11);
        let mut cluster = Cluster::new(&pool, SimDuration::from_secs(3), 100);
        let mut rng = SmallRng::seed_from_u64(2);
        let grant = cluster.create_broadcast(SimTime::ZERO, UserId(1), &sf());
        cluster
            .connect_publisher(SimTime::ZERO, grant.id, &grant.token)
            .unwrap();
        // Feed 10 seconds of frames → 3 complete chunks.
        for i in 0..250u64 {
            let t = SimTime::from_millis(i * 40);
            cluster.ingest_decoded(t, grant.id, frame(i)).unwrap();
        }
        let pop = DatacenterId(17); // San Jose POP, near the SF viewer
        let mut viewer = HlsViewer::new(UserId(9), grant.id, pop, &sf(), AccessLink::StableWifi);
        // Poll every 2.8 s for 30 s of sim time.
        let mut total_new = 0;
        for k in 0..11u64 {
            let now = SimTime::from_secs(10) + SimDuration::from_millis(k * 2_800);
            total_new += viewer.poll(&mut cluster, now, &mut rng);
        }
        assert_eq!(total_new, 3, "all three chunks should arrive");
        assert_eq!(viewer.polls, 11);
        let receipts = viewer.receipts();
        for r in receipts {
            assert!(r.available_at_pop <= r.discovered_at);
            assert!(r.discovered_at < r.arrival);
        }
        // Sequences are in order with no duplicates.
        let seqs: Vec<u64> = receipts.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        let units = viewer.units();
        assert_eq!(units.len(), 3);
        assert_eq!(units[1].media_ts_us, 75 * 40_000);
    }

    #[test]
    fn hls_viewer_survives_polling_a_dead_broadcast() {
        let pool = RngPool::new(12);
        let mut cluster = Cluster::new(&pool, SimDuration::from_secs(3), 100);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut viewer = HlsViewer::new(
            UserId(9),
            BroadcastId(404),
            DatacenterId(8),
            &sf(),
            AccessLink::StableWifi,
        );
        assert_eq!(
            viewer.poll(&mut cluster, SimTime::from_secs(1), &mut rng),
            0
        );
        assert!(viewer.receipts().is_empty());
    }
}
