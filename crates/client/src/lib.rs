//! # livescope-client — broadcaster and viewer endpoints
//!
//! The device side of the system: a camera producing ~40 ms frames over a
//! possibly-bursty uplink, RTMP viewers receiving server pushes, HLS
//! viewers running the 2–2.8 s poll loop, and the playback buffer whose
//! configuration §6 of the paper dissects.
//!
//! * [`broadcaster`] — frame source (keyframe cadence, realistic sizes)
//!   and the two-state bursty uplink model that produces the paper's
//!   "bursty arrival of video frames during uploading" (the cause of the
//!   >5 s buffering tail in Fig 16(b));
//! * [`playback`] — the decompiled buffering strategy of §6: pre-buffer
//!   `P` seconds, play in sequence order, **rebuffer** (stall) when the
//!   next unit is missing, and **discard** stragglers that show up after
//!   newer content already played. Emits the two §6 metrics: stalling
//!   ratio and average buffering delay;
//! * [`viewer`] — drivers that connect the client side to a
//!   `livescope-cdn` [`livescope_cdn::Cluster`] and come back with
//!   arrival traces ready for [`playback::simulate_playback`].

#![forbid(unsafe_code)]

pub mod broadcaster;
pub mod playback;
pub mod viewer;

pub use broadcaster::{FrameSource, UplinkClass, UplinkModel};
pub use playback::{simulate_playback, ArrivedUnit, PlaybackReport};
pub use viewer::{HlsViewer, RtmpViewer};
