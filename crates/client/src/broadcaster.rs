//! The broadcaster device: frame generation and the bursty uplink.

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::Rng;

use livescope_net::AccessLink;
use livescope_proto::rtmp::{VideoFrame, FRAME_INTERVAL_MS};
use livescope_sim::{dist, SimDuration, SimTime};

/// Keyframe cadence: one keyframe every 2 s (every 50th frame at 25 fps).
pub const KEYFRAME_EVERY: u64 = 50;
/// Typical delta-frame payload, bytes (≈600 kbit/s at 25 fps).
pub const DELTA_FRAME_BYTES: usize = 2_500;
/// Typical keyframe payload, bytes.
pub const KEYFRAME_BYTES: usize = 9_000;

/// Generates the frame sequence of one broadcast.
#[derive(Clone, Debug)]
pub struct FrameSource {
    next_seq: u64,
    /// Capture instant of frame 0 on the device clock, µs. The paper notes
    /// device clocks are not universal; keeping an explicit epoch makes
    /// that property visible in tests.
    device_epoch_us: u64,
}

impl FrameSource {
    /// A source whose device clock starts at `device_epoch_us`.
    pub fn new(device_epoch_us: u64) -> Self {
        FrameSource {
            next_seq: 0,
            device_epoch_us,
        }
    }

    /// Produces the next frame. Payload bytes are deterministic filler of
    /// realistic size — content doesn't matter, size and timing do.
    pub fn next_frame(&mut self) -> VideoFrame {
        let seq = self.next_seq;
        self.next_seq += 1;
        let keyframe = seq.is_multiple_of(KEYFRAME_EVERY);
        let size = if keyframe {
            KEYFRAME_BYTES
        } else {
            DELTA_FRAME_BYTES
        };
        // Never zero: an all-zero payload would be indistinguishable from
        // the black-frame tampering attack in the security experiments.
        let fill = 1 + (seq % 250) as u8;
        VideoFrame::new(
            seq,
            self.device_epoch_us + seq * FRAME_INTERVAL_MS * 1_000,
            keyframe,
            Bytes::from(vec![fill; size]),
        )
    }

    /// Capture instant (device clock) of frame `seq`, µs.
    pub fn capture_ts_us(&self, seq: u64) -> u64 {
        self.device_epoch_us + seq * FRAME_INTERVAL_MS * 1_000
    }

    /// Frames per second implied by the 40 ms interval.
    pub fn fps() -> f64 {
        1_000.0 / FRAME_INTERVAL_MS as f64
    }
}

/// Uplink quality classes. §6 observes ~10% of RTMP broadcasts suffer
/// multi-second buffering delays "caused by the bursty arrival of video
/// frames during uploading" — those are [`UplinkClass::Bursty`]
/// broadcasters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UplinkClass {
    /// Stable WiFi: rare, short stalls.
    Steady,
    /// Congested uplink: frequent multi-second stalls followed by bursts.
    Bursty,
}

/// The uplink: per-frame access delay plus a stall-and-burst process.
/// While stalled, captured frames queue on the device and then arrive in a
/// burst once the stall clears.
#[derive(Clone, Debug)]
pub struct UplinkModel {
    pub access: AccessLink,
    /// Probability a given frame triggers a stall.
    pub stall_prob: f64,
    /// Mean stall length, seconds.
    pub stall_mean_s: f64,
    /// Minimum spacing of queued frames when a burst drains (serialization).
    pub drain_spacing: SimDuration,
}

impl UplinkModel {
    /// The model for a quality class.
    pub fn for_class(class: UplinkClass) -> Self {
        match class {
            UplinkClass::Steady => UplinkModel {
                access: AccessLink::StableWifi,
                stall_prob: 0.0002,
                stall_mean_s: 0.8,
                drain_spacing: SimDuration::from_millis(2),
            },
            UplinkClass::Bursty => UplinkModel {
                access: AccessLink::CongestedWifi,
                stall_prob: 0.0025,
                stall_mean_s: 3.0,
                drain_spacing: SimDuration::from_millis(2),
            },
        }
    }

    /// Samples a class with the paper's ~10% bursty mix.
    pub fn sample_class(rng: &mut SmallRng) -> UplinkClass {
        if rng.gen_bool(0.10) {
            UplinkClass::Bursty
        } else {
            UplinkClass::Steady
        }
    }

    /// Maps capture instants to server-arrival instants.
    ///
    /// Invariant: arrivals are strictly increasing (a TCP uplink delivers
    /// in order) and never precede capture + minimum access delay.
    pub fn arrival_times(
        &self,
        captures: &[SimTime],
        frame_bytes: usize,
        rng: &mut SmallRng,
    ) -> Vec<SimTime> {
        let mut out = Vec::with_capacity(captures.len());
        let mut blocked_until = SimTime::ZERO;
        let mut prev_arrival = SimTime::ZERO;
        for &capture in captures {
            if self.stall_prob > 0.0 && rng.gen_bool(self.stall_prob) {
                let stall = SimDuration::from_secs_f64(dist::exponential(rng, self.stall_mean_s));
                blocked_until = blocked_until.max(capture + stall);
            }
            let base = capture + self.access.sample_delay(rng, frame_bytes);
            let mut arrival = base.max(blocked_until);
            if !out.is_empty() {
                arrival = arrival.max(prev_arrival + self.drain_spacing);
            }
            prev_arrival = arrival;
            out.push(arrival);
        }
        out
    }
}

/// Convenience: capture instants for `n` frames starting at `start`.
pub fn capture_schedule(start: SimTime, n: usize) -> Vec<SimTime> {
    (0..n as u64)
        .map(|i| start + SimDuration::from_millis(i * FRAME_INTERVAL_MS))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn frames_have_correct_cadence_and_sizes() {
        let mut src = FrameSource::new(1_000_000);
        let frames: Vec<VideoFrame> = (0..120).map(|_| src.next_frame()).collect();
        assert!(frames[0].meta.keyframe);
        assert!(!frames[1].meta.keyframe);
        assert!(frames[50].meta.keyframe);
        assert_eq!(frames[0].payload.len(), KEYFRAME_BYTES);
        assert_eq!(frames[1].payload.len(), DELTA_FRAME_BYTES);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.meta.sequence, i as u64);
            assert_eq!(f.meta.capture_ts_us, 1_000_000 + i as u64 * 40_000);
        }
        assert_eq!(FrameSource::fps(), 25.0);
    }

    #[test]
    fn capture_schedule_spacing_is_40ms() {
        let sched = capture_schedule(SimTime::from_secs(10), 5);
        for w in sched.windows(2) {
            assert_eq!(w[1].saturating_since(w[0]), SimDuration::from_millis(40));
        }
    }

    #[test]
    fn steady_uplink_arrivals_are_ordered_and_lowish_jitter() {
        let model = UplinkModel::for_class(UplinkClass::Steady);
        let mut rng = SmallRng::seed_from_u64(1);
        let captures = capture_schedule(SimTime::ZERO, 2_000);
        let arrivals = model.arrival_times(&captures, DELTA_FRAME_BYTES, &mut rng);
        assert_eq!(arrivals.len(), captures.len());
        for w in arrivals.windows(2) {
            assert!(w[0] < w[1], "arrivals must be strictly increasing");
        }
        for (c, a) in captures.iter().zip(&arrivals) {
            assert!(a > c, "arrival before capture");
        }
        // Typical delay stays sub-100 ms on a steady link.
        let median_delay = {
            let mut d: Vec<f64> = captures
                .iter()
                .zip(&arrivals)
                .map(|(c, a)| a.saturating_since(*c).as_secs_f64())
                .collect();
            d.sort_by(|a, b| a.partial_cmp(b).unwrap());
            d[d.len() / 2]
        };
        assert!(median_delay < 0.1, "median uplink delay {median_delay}");
    }

    #[test]
    fn bursty_uplink_stalls_then_bursts() {
        let model = UplinkModel::for_class(UplinkClass::Bursty);
        let mut rng = SmallRng::seed_from_u64(7);
        // 2 minutes of frames: expect a few stalls.
        let captures = capture_schedule(SimTime::ZERO, 3_000);
        let arrivals = model.arrival_times(&captures, DELTA_FRAME_BYTES, &mut rng);
        let max_delay = captures
            .iter()
            .zip(&arrivals)
            .map(|(c, a)| a.saturating_since(*c).as_secs_f64())
            .fold(0.0, f64::max);
        assert!(max_delay > 1.0, "no burst formed (max delay {max_delay})");
        // During a burst drain, consecutive arrivals are nearly
        // back-to-back even though captures are 40 ms apart.
        let min_gap = arrivals
            .windows(2)
            .map(|w| w[1].saturating_since(w[0]).as_secs_f64())
            .fold(f64::MAX, f64::min);
        assert!(
            min_gap < 0.01,
            "no burst drain observed (min gap {min_gap})"
        );
    }

    #[test]
    fn class_mix_is_about_ten_percent_bursty() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let bursty = (0..n)
            .filter(|_| UplinkModel::sample_class(&mut rng) == UplinkClass::Bursty)
            .count();
        let frac = bursty as f64 / n as f64;
        assert!((frac - 0.10).abs() < 0.01, "bursty fraction {frac}");
    }

    #[test]
    fn empty_capture_list_yields_empty_arrivals() {
        let model = UplinkModel::for_class(UplinkClass::Steady);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(model.arrival_times(&[], 100, &mut rng).is_empty());
    }
}
