//! detlint fixture: the `profile` exemption is a *range*, not a file
//! pass — a wall-clock read under `#[cfg(feature = "profile")]` is
//! exempt, while the same read outside the gated section still fires.
//! Exactly one `wall-clock` finding.

fn gated_profiling() {
    #[cfg(feature = "profile")]
    let _stamp = std::time::Instant::now(); // exempt: profile-gated

    let _leak = std::time::Instant::now(); // fires: outside the gate
}
