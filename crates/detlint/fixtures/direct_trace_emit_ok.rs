// Fixture: handler emission done right (through the EventCtx), plus a
// legacy single-lane Ticker closure, which is *not* a handler and may
// write its sink directly. Zero findings.

fn schedule(sched: &mut ShardedScheduler, at: u64, pop: PopId) {
    sched.schedule(at, pop, Box::new(move |ctx, pop: &mut Pop| {
        pop.delivered += 1;
        ctx.emit(chunk_event(pop));
    }));
}

fn legacy_ticker(runtime: &mut Runtime, at: u64) {
    runtime.spawn(move |sched, world: &mut World| {
        world.telemetry.emit(at, tick_event(sched.now()));
    });
}
