// Fixture: every way a Section stamp may legitimately flow — named
// binding closed later, fed straight into `.end(...)`, and returned as
// the fn's value (both tail-expression and explicit `return`). Zero
// findings.

fn timed(sec: &mut Section) -> u64 {
    let stamp = sec.begin();
    let n = work();
    sec.end(stamp);
    n
}

fn inline(off: &mut Section) {
    off.end(off.begin());
}

fn start(sec: &Section) -> SectionStamp {
    sec.begin()
}

fn start_explicit(sec: &Section) -> SectionStamp {
    return sec.begin();
}
