// Fixture: a correctly paired span — registry helper, registry arity,
// opened and closed with the same identity fields. Zero findings.

fn overlay_frame(t: &mut Telemetry, now: u64, anchor: u64, seq: u64) {
    t.emit(now, TraceEvent::SpanOpen {
        id: overlay_frame_span(anchor, seq),
        parent: 0,
        kind: SpanKind::OverlayFrame,
        broadcast: anchor,
        subject: seq,
        site: 0,
    });
    t.emit(now + 1, TraceEvent::SpanClose {
        id: overlay_frame_span(anchor, seq),
        kind: SpanKind::OverlayFrame,
    });
}
