// Fixture: profile Section stamps dropped on the floor. Exactly two
// section-discipline findings: a `let _ =` discard and a bare-statement
// discard — both record a zero-length section.

fn lap(sections: &mut Sections) {
    let _ = sections.fanout.begin();
    fan_out();
    sections.seal.begin();
    seal_chunks();
}
