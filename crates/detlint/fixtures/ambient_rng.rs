//! detlint fixture: exactly one `ambient-rng` finding.

fn roll() -> u32 {
    let mut rng = thread_rng();
    rng.gen_range(0..6)
}
