//! detlint fixture: zero findings — a well-formed suppression.

fn cli_banner_time() -> std::time::Duration {
    // detlint::allow(wall-clock) — CLI progress display only; never lands in a trace
    let t0 = std::time::Instant::now();
    t0.elapsed()
}
