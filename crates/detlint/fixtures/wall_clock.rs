//! detlint fixture: exactly one `wall-clock` finding.

fn elapsed_wall() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    t0.elapsed()
}
