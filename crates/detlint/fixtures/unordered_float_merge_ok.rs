// Fixture: order-safe merges of a mergeable accumulator — positional
// Vec zip and BTreeMap iteration. Zero findings.

struct StreamingCampaign {
    per_day: Vec<f64>,
    by_pop: BTreeMap<u16, f64>,
    total: f64,
}

impl StreamingCampaign {
    fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.per_day.iter_mut().zip(&other.per_day) {
            *mine += *theirs;
        }
        for (pop, w) in &other.by_pop {
            *self.by_pop.entry(*pop).or_insert(0.0) += *w;
            self.total += *w;
        }
    }
}
