//! detlint fixture: zero findings — near misses for every rule.

use std::collections::{BTreeMap, HashMap};

/// BTreeMap iteration is ordered: fine.
/// (Named `bt`, not `m`: binding tracking is file-scoped, and `m` names
/// a HashMap in the functions below.)
fn ordered_sum(bt: &BTreeMap<u64, f64>) -> f64 {
    bt.values().sum::<f64>()
}

/// Lookups and inserts on a HashMap never observe order: fine.
fn count(m: &mut HashMap<u64, u64>, k: u64) {
    *m.entry(k).or_insert(0) += 1;
    let _ = m.get(&k);
}

/// The sorted-collect escape: order restored before use.
fn sorted_keys(m: &HashMap<u64, u64>) -> Vec<u64> {
    let mut keys: Vec<u64> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}

/// Collecting into an ordered container restores order too.
fn as_btree(m: &HashMap<u64, u64>) -> BTreeMap<u64, u64> {
    m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<u64, u64>>()
}

/// Profile-gated wall-clock is the sanctioned profiler path.
fn profiled() {
    #[cfg(feature = "profile")]
    let _t0 = std::time::Instant::now();
}

/// Seeded RNG is the required idiom, not ambient RNG.
fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Hazard names inside strings and comments are not code.
fn doc() -> &'static str {
    // Instant::now() thread_rng() unsafe todo! — just a comment
    "Instant::now() thread_rng() unsafe todo! SystemTime"
}

#[cfg(test)]
mod tests {
    /// todo! is tolerated in test-only code while a suite is built out.
    fn wip() {
        todo!()
    }
}
