// Fixture: span emissions that break the §11 causal-span contract.
// Exactly three span-balance findings:
//   1. the ViewerSession open below is closed nowhere in the scan set;
//   2. the ChunkSeal open builds its id with 1 identity field where the
//      registry defines 2 (its close is correct, so the pair balances);
//   3. the ViewerDeliver open uses origin_fetch_span — the wrong helper
//      for its kind (its close is correct).

fn open_session(t: &mut Telemetry, now: u64, b: u64, v: u64) {
    t.emit(now, TraceEvent::SpanOpen {
        id: viewer_session_span(b, v),
        parent: 0,
        kind: SpanKind::ViewerSession,
        broadcast: b,
        subject: v,
        site: 0,
    });
}

fn seal_chunk(t: &mut Telemetry, now: u64, b: u64, c: u64) {
    t.emit(now, TraceEvent::SpanOpen {
        id: chunk_seal_span(b),
        parent: 0,
        kind: SpanKind::ChunkSeal,
        broadcast: b,
        subject: c,
        site: 0,
    });
    t.emit(now + 4, TraceEvent::SpanClose {
        id: chunk_seal_span(b, c),
        kind: SpanKind::ChunkSeal,
    });
}

fn deliver(t: &mut Telemetry, now: u64, b: u64, v: u64, p: u64) {
    t.emit(now, TraceEvent::SpanOpen {
        id: origin_fetch_span(b, v, p),
        parent: 0,
        kind: SpanKind::ViewerDeliver,
        broadcast: b,
        subject: v,
        site: p,
    });
    t.emit(now + 2, TraceEvent::SpanClose {
        id: viewer_deliver_span(b, v, p),
        kind: SpanKind::ViewerDeliver,
    });
}
