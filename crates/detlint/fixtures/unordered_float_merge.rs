// Fixture: a mergeable accumulator whose merge folds floats in hash
// order. Exactly one unordered-float-merge finding (the structural rule
// supersedes the token-level hash rules on the same line). Note the
// `&other.weights` field access: the flat token rules cannot see it, the
// scope-aware pass can.

struct StreamingCampaign {
    weights: HashMap<u64, f64>,
    total: f64,
}

impl StreamingCampaign {
    fn merge(&mut self, other: &Self) {
        for (_day, w) in &other.weights {
            self.total += *w;
        }
    }
}
