//! detlint fixture: exactly one `unordered-float-sum` finding.

use std::collections::HashMap;

fn mean_delay(delays: &HashMap<u64, f64>) -> f64 {
    let total = delays.values().sum::<f64>();
    total / delays.len() as f64
}
