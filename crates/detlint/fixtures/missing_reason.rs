//! detlint fixture: exactly one `missing-reason` finding.
//!
//! The bare directive suppresses the underlying wall-clock finding but
//! is itself reported, so the gate stays red until a reason is written.

fn startup_stamp() -> bool {
    let t0 = std::time::Instant::now(); // detlint::allow(wall-clock)
    t0.elapsed().as_secs() == 0
}
