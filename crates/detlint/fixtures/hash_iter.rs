//! detlint fixture: exactly one `hash-iter` finding.
//! Not compiled — linted by `crates/detlint/tests/fixtures.rs` and by
//! `detlint crates/detlint/fixtures` (which must exit nonzero).

use std::collections::HashMap;

fn total_sessions(sessions: &HashMap<u64, u64>) -> u64 {
    // Hash-order iteration of an integer map: order-independent result,
    // but the iteration itself is banned (hash-iter).
    sessions.values().sum::<u64>()
}
