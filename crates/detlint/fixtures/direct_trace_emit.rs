// Fixture: trace emission inside ShardedScheduler handlers that bypasses
// the per-shard EventCtx buffer. Exactly two direct-trace-emit findings:
// a captured telemetry handle's `.emit`, and a raw tracer `.span_open`.

fn schedule(sched: &mut ShardedScheduler, at: u64, pop: PopId) {
    sched.schedule(at, pop, Box::new(move |ctx, pop: &mut Pop| {
        pop.telemetry.emit(at, chunk_event(pop));
        let _unused = ctx;
    }));
    sched.schedule(at + 1, pop, Box::new(move |ctx, pop: &mut Pop| {
        pop.tracer.span_open(pop.current_span);
        ctx.emit(chunk_event(pop));
    }));
}
