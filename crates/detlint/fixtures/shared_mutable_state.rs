// detlint::scope(shard)
// Fixture: shared mutability inside shard-executed code. Exactly four
// shared-mutable-state findings — `static mut`, `Mutex`, `RefCell`, and
// a Relaxed atomic. (The scope directive stands in for living under
// crates/sim|cdn|core.)

static mut DELIVERIES: u64 = 0;

fn tally(hits: &AtomicU64) {
    let lock = Mutex::new(0u64);
    let scratch = RefCell::new(Vec::new());
    hits.fetch_add(1, Ordering::Relaxed);
    drop((lock, scratch));
}
