//! detlint fixture: exactly one `todo-panic` finding.

fn sharded_schedule() -> u64 {
    todo!("sharded scheduler lands in a later PR")
}
