// detlint::scope(shard)
// Fixture: shard-executed code that stays inside the merge contract —
// state owned by the shard struct, SeqCst for the one sanctioned gauge,
// and a *local* type named Cell that must not be confused with
// std::cell::Cell. Zero findings.

struct Cell {
    cost: u64,
}

struct Shard {
    delivered: u64,
    grid: Vec<Cell>,
}

fn tally(shard: &mut Shard, gauge: &AtomicU64) {
    shard.delivered += 1;
    shard.grid.push(Cell { cost: shard.delivered });
    gauge.fetch_add(1, Ordering::SeqCst);
}
