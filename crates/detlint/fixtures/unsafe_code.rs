//! detlint fixture: exactly one `unsafe-code` finding.

fn reinterpret(x: u64) -> f64 {
    unsafe { std::mem::transmute(x) }
}
