#![forbid(unsafe_code)]
//! Self-test over the fixture corpus: every rule fires exactly once
//! across `crates/detlint/fixtures/`, and the clean/suppressed fixtures
//! yield zero findings. This is the CI guarantee that detlint still
//! *detects* each banned construct (a lint that silently stops firing
//! would otherwise look like a clean tree).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use livescope_detlint::{scan, Config};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/detlint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn each_rule_fires_exactly_once_across_the_corpus() {
    let outcome = scan(&repo_root(), &Config::default(), Some(&[fixtures_dir()]))
        .expect("fixture scan succeeds");
    let mut by_rule: BTreeMap<&str, u32> = BTreeMap::new();
    for f in &outcome.findings {
        *by_rule.entry(f.rule).or_insert(0) += 1;
    }
    let expected: BTreeMap<&str, u32> = [
        ("hash-iter", 1),
        // Two wall-clock fixtures: the plain read, and the one proving
        // the `#[cfg(feature = "profile")]` exemption ends with its
        // gated range (one finding each).
        ("wall-clock", 2),
        ("ambient-rng", 1),
        ("unordered-float-sum", 1),
        ("unsafe-code", 1),
        ("todo-panic", 1),
        ("missing-reason", 1),
        // Structural rules: static mut + Mutex + RefCell + Relaxed.
        ("shared-mutable-state", 4),
        // A captured sink `.emit` and a raw `.span_open` in handlers.
        ("direct-trace-emit", 2),
        // Wrong arity + wrong helper (per-site), and one ViewerSession
        // open that nothing in the corpus ever closes (cross-file).
        ("span-balance", 3),
        // `let _ = ….begin()` and a bare `….begin();`.
        ("section-discipline", 2),
        // A float fold over a HashMap field inside a merge impl.
        ("unordered-float-merge", 1),
    ]
    .into_iter()
    .collect();
    assert_eq!(by_rule, expected, "findings: {:#?}", outcome.findings);
}

#[test]
fn clean_and_suppressed_fixtures_have_zero_findings() {
    for name in [
        "clean.rs",
        "allowed_ok.rs",
        "shared_mutable_ok.rs",
        "direct_trace_emit_ok.rs",
        "span_balance_ok.rs",
        "section_discipline_ok.rs",
        "unordered_float_merge_ok.rs",
    ] {
        let path = fixtures_dir().join(name);
        let outcome =
            scan(&repo_root(), &Config::default(), Some(&[path])).expect("fixture scan succeeds");
        assert!(
            outcome.findings.is_empty(),
            "{name} should be clean: {:#?}",
            outcome.findings
        );
    }
}

#[test]
fn findings_attribute_the_right_fixture_file() {
    let outcome = scan(&repo_root(), &Config::default(), Some(&[fixtures_dir()]))
        .expect("fixture scan succeeds");
    for (rule, file) in [
        ("hash-iter", "hash_iter.rs"),
        ("ambient-rng", "ambient_rng.rs"),
        ("unordered-float-sum", "unordered_float_sum.rs"),
        ("unsafe-code", "unsafe_code.rs"),
        ("todo-panic", "todo_panic.rs"),
        ("missing-reason", "missing_reason.rs"),
        ("shared-mutable-state", "shared_mutable_state.rs"),
        ("direct-trace-emit", "direct_trace_emit.rs"),
        ("span-balance", "span_balance.rs"),
        ("section-discipline", "section_discipline.rs"),
        ("unordered-float-merge", "unordered_float_merge.rs"),
    ] {
        let f = outcome
            .findings
            .iter()
            .find(|f| f.rule == rule)
            .unwrap_or_else(|| panic!("no {rule} finding"));
        assert!(
            f.path.ends_with(file),
            "{rule} should come from {file}, got {}",
            f.path
        );
    }
    // wall-clock fires in two fixtures: once for the plain read, once
    // for the read *outside* a `#[cfg(feature = "profile")]` range in a
    // file that also contains an exempt gated read.
    let mut wall_clock_files: Vec<&str> = outcome
        .findings
        .iter()
        .filter(|f| f.rule == "wall-clock")
        .map(|f| f.path.rsplit('/').next().expect("non-empty path"))
        .collect();
    wall_clock_files.sort_unstable();
    assert_eq!(
        wall_clock_files,
        ["wall_clock.rs", "wall_clock_outside_profile.rs"],
        "findings: {:#?}",
        outcome.findings
    );
}

#[test]
fn workspace_scan_is_clean_with_the_checked_in_allowlist() {
    let root = repo_root();
    let config_text = std::fs::read_to_string(root.join("detlint.toml"))
        .expect("detlint.toml exists at the workspace root");
    let config = Config::parse(&config_text).expect("detlint.toml parses");
    let outcome = scan(&root, &config, None).expect("workspace scan succeeds");
    assert!(
        outcome.findings.is_empty(),
        "workspace must lint clean: {:#?}",
        outcome.findings
    );
    assert!(
        outcome.files_scanned > 100,
        "workspace scan saw only {} files",
        outcome.files_scanned
    );
}
