#![forbid(unsafe_code)]
//! Integration tests for the incremental cache and the allowlist audit,
//! each over a throwaway workspace under `CARGO_TARGET_TMPDIR`.

use std::fs;
use std::path::{Path, PathBuf};

use livescope_detlint::{scan_with, Config, ScanOptions};

fn temp_root(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("src")).expect("create temp workspace");
    root
}

#[test]
fn second_scan_replays_from_cache_and_edits_invalidate() {
    let root = temp_root("detlint-cache");
    fs::write(
        root.join("src/a.rs"),
        "fn f() { let t = Instant::now(); }\n",
    )
    .unwrap();
    fs::write(root.join("src/b.rs"), "fn g() -> u64 { 7 }\n").unwrap();
    let options = ScanOptions {
        cache_path: Some(root.join("target/detlint-cache.json")),
        audit_allowlist: false,
    };

    let cold = scan_with(&root, &Config::default(), None, &options).expect("cold scan");
    assert_eq!(cold.files_scanned, 2);
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.findings.len(), 1);
    assert_eq!(cold.findings[0].rule, "wall-clock");

    let warm = scan_with(&root, &Config::default(), None, &options).expect("warm scan");
    assert_eq!(warm.cache_hits, 2, "both files should replay from cache");
    assert_eq!(
        warm.findings, cold.findings,
        "replay must not change results"
    );

    // Editing one file invalidates only that file — and the scan sees the
    // new content (here: the finding goes away).
    fs::write(root.join("src/a.rs"), "fn f(t: SimTime) -> SimTime { t }\n").unwrap();
    let edited = scan_with(&root, &Config::default(), None, &options).expect("edited scan");
    assert_eq!(edited.cache_hits, 1, "only the unchanged file replays");
    assert!(edited.findings.is_empty(), "{:#?}", edited.findings);

    // `--no-cache` (no cache path) still gets the same answer.
    let uncached = scan_with(
        &root,
        &Config::default(),
        None,
        &ScanOptions {
            cache_path: None,
            audit_allowlist: false,
        },
    )
    .expect("uncached scan");
    assert_eq!(uncached.cache_hits, 0);
    assert!(uncached.findings.is_empty());
}

#[test]
fn explicit_paths_never_touch_the_cache() {
    let root = temp_root("detlint-cache-explicit");
    fs::write(root.join("src/a.rs"), "fn f() { let r = thread_rng(); }\n").unwrap();
    let options = ScanOptions {
        cache_path: Some(root.join("target/detlint-cache.json")),
        audit_allowlist: false,
    };
    let paths = [PathBuf::from("src/a.rs")];
    let first = scan_with(&root, &Config::default(), Some(&paths), &options).expect("scan");
    let second = scan_with(&root, &Config::default(), Some(&paths), &options).expect("scan");
    assert_eq!(first.cache_hits + second.cache_hits, 0);
    assert!(!root.join("target/detlint-cache.json").exists());
}

#[test]
fn allowlist_audit_flags_dead_prefixes_and_dead_rules() {
    let root = temp_root("detlint-audit");
    fs::write(
        root.join("src/a.rs"),
        "fn f() { let t = Instant::now(); }\n",
    )
    .unwrap();
    let config = Config::parse(
        "[allow]\n\
         \"ghost/\" = \"*\"\n\
         \"src/\" = [\"wall-clock\", \"ambient-rng\"]\n",
    )
    .expect("config parses");

    let audited = scan_with(&root, &config, None, &ScanOptions::default()).expect("scan");
    let stale: Vec<_> = audited
        .findings
        .iter()
        .filter(|f| f.rule == "stale-allowlist")
        .collect();
    assert_eq!(stale.len(), 2, "{:#?}", audited.findings);
    // `ghost/` matches no scanned file; its finding points at line 2.
    assert!(stale[0].message.contains("ghost/") && stale[0].message.contains("no scanned file"));
    assert_eq!((stale[0].path.as_str(), stale[0].line), ("detlint.toml", 2));
    // `src/` matched and its wall-clock suppression earned credit, but
    // ambient-rng suppressed nothing.
    assert!(stale[1].message.contains("ambient-rng"));
    assert_eq!(stale[1].line, 3);
    // The credited suppression still applied: no wall-clock finding.
    assert!(audited.findings.iter().all(|f| f.rule != "wall-clock"));

    // Audit off: stale entries stay silent, suppression still applies.
    let silent = scan_with(
        &root,
        &config,
        None,
        &ScanOptions {
            cache_path: None,
            audit_allowlist: false,
        },
    )
    .expect("scan");
    assert!(silent.findings.is_empty(), "{:#?}", silent.findings);
}
