//! SARIF 2.1.0 output (`detlint --format sarif` / `--sarif-out`), so CI
//! can attach findings to changed lines as code-scanning annotations.
//!
//! One run, one driver ("detlint"), every rule listed with its summary
//! and `--explain` text as the full description; each finding becomes a
//! `result` with `ruleId`, an error-level message, and one physical
//! location. The shape is pinned by a unit test that re-reads the output
//! with [`crate::json`].

use crate::rules::{Finding, RULES};

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a SARIF 2.1.0 log.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut s = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"detlint\",\"informationUri\":\"https://example.invalid/livescope/detlint\",\"version\":\"",
    );
    s.push_str(env!("CARGO_PKG_VERSION"));
    s.push_str("\",\"rules\":[");
    for (i, rule) in RULES.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\"fullDescription\":{{\"text\":\"{}\"}},\"defaultConfiguration\":{{\"level\":\"error\"}}}}",
            esc(rule.name),
            esc(rule.summary),
            esc(rule.explain)
        ));
    }
    s.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let rule_index = RULES.iter().position(|r| r.name == f.rule).unwrap_or(0);
        s.push_str(&format!(
            "{{\"ruleId\":\"{}\",\"ruleIndex\":{},\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\",\"uriBaseId\":\"SRCROOT\"}},\"region\":{{\"startLine\":{}}}}}}}]}}",
            esc(f.rule),
            rule_index,
            esc(&f.message),
            esc(&f.path),
            f.line
        ));
    }
    s.push_str("]}]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                rule: "span-balance",
                path: "crates/cdn/src/wowza.rs".to_string(),
                line: 149,
                message: "kind opened but never closed".to_string(),
            },
            Finding {
                rule: "wall-clock",
                path: "crates/sim/src/engine.rs".to_string(),
                line: 7,
                message: "`Instant::now()` — \"quoted\"".to_string(),
            },
        ]
    }

    #[test]
    fn output_matches_the_sarif_2_1_0_shape() {
        let v = json::parse(&render_sarif(&sample())).expect("sarif parses as JSON");
        assert_eq!(v.get("version").as_str(), Some("2.1.0"));
        assert!(v
            .get("$schema")
            .as_str()
            .is_some_and(|s| s.contains("sarif-2.1.0")));
        let run = v.get("runs").at(0);
        let driver = run.get("tool").get("driver");
        assert_eq!(driver.get("name").as_str(), Some("detlint"));
        // Every rule is declared, with non-empty descriptions.
        let rules = driver.get("rules").as_array().expect("rules array");
        assert_eq!(rules.len(), RULES.len());
        for r in rules {
            assert!(r.get("id").as_str().is_some());
            assert!(!r
                .get("shortDescription")
                .get("text")
                .as_str()
                .expect("shortDescription.text")
                .is_empty());
            assert!(!r
                .get("fullDescription")
                .get("text")
                .as_str()
                .expect("fullDescription.text")
                .is_empty());
        }
        // Results carry ruleId, message.text, and a physical location.
        let results = run.get("results").as_array().expect("results array");
        assert_eq!(results.len(), 2);
        let first = &results[0];
        assert_eq!(first.get("ruleId").as_str(), Some("span-balance"));
        assert_eq!(first.get("level").as_str(), Some("error"));
        assert_eq!(
            first.get("message").get("text").as_str(),
            Some("kind opened but never closed")
        );
        let loc = first.at(0); // not an array — must be Null
        assert_eq!(loc, &json::Value::Null);
        let phys = first.get("locations").at(0).get("physicalLocation");
        assert_eq!(
            phys.get("artifactLocation").get("uri").as_str(),
            Some("crates/cdn/src/wowza.rs")
        );
        assert_eq!(phys.get("region").get("startLine").as_u64(), Some(149));
        // ruleIndex points back into the declared rules.
        let idx = first.get("ruleIndex").as_u64().expect("ruleIndex") as usize;
        assert_eq!(rules[idx].get("id").as_str(), Some("span-balance"));
        // Escaping survives the round trip.
        assert!(results[1]
            .get("message")
            .get("text")
            .as_str()
            .expect("text")
            .contains("\"quoted\""));
    }

    #[test]
    fn empty_findings_still_produce_a_valid_run() {
        let v = json::parse(&render_sarif(&[])).expect("parses");
        assert_eq!(
            v.get("runs")
                .at(0)
                .get("results")
                .as_array()
                .map(<[_]>::len),
            Some(0)
        );
    }
}
