//! `detlint.toml` — path-scoped allowlist configuration.
//!
//! A deliberately tiny TOML subset (this crate is dependency-free): one
//! `[allow]` table whose keys are quoted path prefixes and whose values
//! are a rule name, `"*"`, or an array of rule names:
//!
//! ```toml
//! [allow]
//! "vendor/" = "*"
//! "crates/bench/src/bin/" = ["wall-clock"]
//! ```
//!
//! A finding is dropped when its path starts with an allowed prefix and
//! its rule is listed (or the entry is `"*"`). Paths given explicitly on
//! the detlint command line bypass the allowlist — that is how the
//! fixture corpus is linted on purpose.
//!
//! Entries keep their source line so the allowlist audit
//! (`stale-allowlist`) can point a finding at the exact line of a dead
//! entry.

/// One `[allow]` entry, in file order.
#[derive(Clone, Debug, PartialEq)]
pub struct AllowEntry {
    /// Path prefix the entry covers.
    pub prefix: String,
    /// Rules allowed there (`"*"` means all).
    pub rules: Vec<String>,
    /// 1-based line in detlint.toml, for audit findings.
    pub line: u32,
}

/// Parsed configuration.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// The `[allow]` entries, in file order (later duplicate prefixes
    /// replace earlier ones, matching the old map semantics).
    pub allow: Vec<AllowEntry>,
}

impl Config {
    /// Parses `detlint.toml` text. Unknown sections are ignored (forward
    /// compatibility); malformed lines are errors.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            if section != "allow" {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("detlint.toml:{}: expected `key = value`", lineno + 1))?;
            let key = parse_string(key.trim())
                .ok_or_else(|| format!("detlint.toml:{}: key must be a quoted path", lineno + 1))?;
            let rules = parse_rules(value.trim())
                .ok_or_else(|| format!("detlint.toml:{}: bad rule list", lineno + 1))?;
            config.allow.retain(|e| e.prefix != key);
            config.allow.push(AllowEntry {
                prefix: key,
                rules,
                line: (lineno + 1) as u32,
            });
        }
        Ok(config)
    }

    /// Is `rule` allowlisted for `path`?
    pub fn allows(&self, path: &str, rule: &str) -> bool {
        let normalized = path.replace('\\', "/");
        self.allow.iter().any(|e| {
            normalized.starts_with(e.prefix.as_str())
                && e.rules.iter().any(|r| r == "*" || r == rule)
        })
    }
}

fn strip_comment(line: &str) -> &str {
    // A `#` outside quotes starts a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(s: &str) -> Option<String> {
    s.strip_prefix('"')?.strip_suffix('"').map(str::to_string)
}

fn parse_rules(s: &str) -> Option<Vec<String>> {
    if let Some(one) = parse_string(s) {
        return Some(vec![one]);
    }
    let body = s.strip_prefix('[')?.strip_suffix(']')?;
    let mut rules = Vec::new();
    for item in body.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        rules.push(parse_string(item)?);
    }
    Some(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_star_and_lists() {
        let config = Config::parse(
            "# comment\n[allow]\n\"vendor/\" = \"*\"  # vendored\n\
             \"crates/bench/\" = [\"wall-clock\", \"ambient-rng\",]\n",
        )
        .unwrap();
        assert!(config.allows("vendor/rand/src/lib.rs", "hash-iter"));
        assert!(config.allows("crates/bench/benches/x.rs", "wall-clock"));
        assert!(!config.allows("crates/bench/benches/x.rs", "hash-iter"));
        assert!(!config.allows("crates/cdn/src/wowza.rs", "wall-clock"));
    }

    #[test]
    fn ignores_unknown_sections() {
        let config = Config::parse("[future]\nx = 1\n[allow]\n\"v/\" = \"*\"\n").unwrap();
        assert_eq!(config.allow.len(), 1);
    }

    #[test]
    fn rejects_unquoted_keys() {
        assert!(Config::parse("[allow]\nvendor = \"*\"\n").is_err());
    }

    #[test]
    fn entries_keep_their_source_line_and_dedup_by_prefix() {
        let config = Config::parse(
            "[allow]\n\n\"vendor/\" = \"*\"\n\"v2/\" = [\"hash-iter\"]\n\"vendor/\" = [\"unsafe-code\"]\n",
        )
        .unwrap();
        assert_eq!(config.allow.len(), 2);
        let vendor = config.allow.iter().find(|e| e.prefix == "vendor/").unwrap();
        assert_eq!(vendor.line, 5, "later entry replaces the earlier one");
        assert_eq!(vendor.rules, vec!["unsafe-code".to_string()]);
        assert!(!config.allows("vendor/x.rs", "hash-iter"));
        let v2 = config.allow.iter().find(|e| e.prefix == "v2/").unwrap();
        assert_eq!(v2.line, 4);
    }
}
