#![forbid(unsafe_code)]
//! `detlint` — the determinism & safety lint CLI.
//!
//! ```text
//! detlint [--root <dir>] [--format text|json|sarif] [--sarif-out <file>]
//!         [--no-cache] [--no-audit-allowlist] [paths…]
//! detlint --explain <rule>
//! detlint --list-rules
//! detlint --list-scopes <file>
//! ```
//!
//! Exit status: 0 clean, 1 findings, 2 usage/IO error. Without explicit
//! paths the whole workspace under `--root` (default: the nearest
//! ancestor containing `detlint.toml`, else the current directory) is
//! scanned, the `detlint.toml` allowlist applies (and is audited for
//! stale entries), and an incremental cache under `target/` skips
//! unchanged files; explicit paths bypass the allowlist and cache so
//! e.g. the fixture corpus can be linted.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use livescope_detlint::{
    lexer, render_json, render_sarif, render_text, rule_info, scan_with, scope::ScopeTree, Config,
    ScanOptions, RULES,
};

struct Args {
    root: Option<PathBuf>,
    format: Format,
    explain: Option<String>,
    list_rules: bool,
    list_scopes: Option<PathBuf>,
    sarif_out: Option<PathBuf>,
    no_cache: bool,
    audit_allowlist: bool,
    paths: Vec<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn usage() -> &'static str {
    "usage: detlint [--root <dir>] [--format text|json|sarif] [--sarif-out <file>]\n               [--no-cache] [--no-audit-allowlist] [paths…]\n       detlint --explain <rule>\n       detlint --list-rules\n       detlint --list-scopes <file>"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Text,
        explain: None,
        list_rules: false,
        list_scopes: None,
        sarif_out: None,
        no_cache: false,
        audit_allowlist: true,
        paths: Vec::new(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => {
                let dir = iter.next().ok_or("--root needs a directory")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--format" => match iter.next().as_deref() {
                Some("text") => args.format = Format::Text,
                Some("json") => args.format = Format::Json,
                Some("sarif") => args.format = Format::Sarif,
                other => {
                    return Err(format!(
                        "--format must be text, json, or sarif, got {other:?}"
                    ))
                }
            },
            "--sarif-out" => {
                let file = iter.next().ok_or("--sarif-out needs a file path")?;
                args.sarif_out = Some(PathBuf::from(file));
            }
            "--no-cache" => args.no_cache = true,
            "--audit-allowlist" => args.audit_allowlist = true,
            "--no-audit-allowlist" => args.audit_allowlist = false,
            "--explain" => {
                args.explain = Some(iter.next().ok_or("--explain needs a rule name")?);
            }
            "--list-rules" => args.list_rules = true,
            "--list-scopes" => {
                let file = iter.next().ok_or("--list-scopes needs a file path")?;
                args.list_scopes = Some(PathBuf::from(file));
            }
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    Ok(args)
}

/// Walks up from the current directory to the first `detlint.toml`.
fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("detlint.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        }
    }
}

fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("detlint.toml");
    if !path.is_file() {
        return Ok(Config::default());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    Config::parse(&text)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("detlint: {msg}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in RULES {
            println!("{:<22} {}", rule.name, rule.summary);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(name) = &args.explain {
        match rule_info(name) {
            Some(rule) => {
                println!("{} — {}\n\n{}", rule.name, rule.summary, rule.explain);
                return ExitCode::SUCCESS;
            }
            None => {
                eprintln!("detlint: unknown rule `{name}` (try --list-rules)");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(file) = &args.list_scopes {
        // Debug aid: print the scope tree the structural pass sees.
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("detlint: {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        let lexed = lexer::lex(&text);
        print!("{}", ScopeTree::build(&lexed.tokens).render());
        return ExitCode::SUCCESS;
    }

    let root = args.root.clone().unwrap_or_else(find_root);
    let config = match load_config(&root) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("detlint: {msg}");
            return ExitCode::from(2);
        }
    };
    let paths = if args.paths.is_empty() {
        None
    } else {
        Some(args.paths.as_slice())
    };
    let options = ScanOptions {
        cache_path: (!args.no_cache).then(|| root.join("target/detlint-cache.json")),
        audit_allowlist: args.audit_allowlist,
    };
    let outcome = match scan_with(&root, &config, paths, &options) {
        Ok(outcome) => outcome,
        Err(msg) => {
            eprintln!("detlint: {msg}");
            return ExitCode::from(2);
        }
    };

    if let Some(out) = &args.sarif_out {
        if let Some(dir) = out.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(out, render_sarif(&outcome.findings)) {
            eprintln!("detlint: {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }

    match args.format {
        Format::Json => println!("{}", render_json(&outcome.findings)),
        Format::Sarif => println!("{}", render_sarif(&outcome.findings)),
        Format::Text => {
            print!("{}", render_text(&outcome.findings));
            let cached = if outcome.cache_hits > 0 {
                format!(" ({} from cache)", outcome.cache_hits)
            } else {
                String::new()
            };
            if outcome.findings.is_empty() {
                eprintln!(
                    "detlint: {} files scanned{cached}, no findings",
                    outcome.files_scanned
                );
            } else {
                eprintln!(
                    "detlint: {} finding(s) in {} files scanned{cached}",
                    outcome.findings.len(),
                    outcome.files_scanned
                );
            }
        }
    }
    if outcome.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
