#![forbid(unsafe_code)]
//! `detlint` — the determinism & safety lint CLI.
//!
//! ```text
//! detlint [--root <dir>] [--format text|json] [paths…]
//! detlint --explain <rule>
//! detlint --list-rules
//! ```
//!
//! Exit status: 0 clean, 1 findings, 2 usage/IO error. Without explicit
//! paths the whole workspace under `--root` (default: the nearest
//! ancestor containing `detlint.toml`, else the current directory) is
//! scanned and the `detlint.toml` allowlist applies; explicit paths
//! bypass the allowlist so e.g. the fixture corpus can be linted.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use livescope_detlint::{render_json, render_text, rule_info, scan, Config, RULES};

struct Args {
    root: Option<PathBuf>,
    format: Format,
    explain: Option<String>,
    list_rules: bool,
    paths: Vec<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn usage() -> &'static str {
    "usage: detlint [--root <dir>] [--format text|json] [paths…]\n       detlint --explain <rule>\n       detlint --list-rules"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Text,
        explain: None,
        list_rules: false,
        paths: Vec::new(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => {
                let dir = iter.next().ok_or("--root needs a directory")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--format" => match iter.next().as_deref() {
                Some("text") => args.format = Format::Text,
                Some("json") => args.format = Format::Json,
                other => return Err(format!("--format must be text or json, got {other:?}")),
            },
            "--explain" => {
                args.explain = Some(iter.next().ok_or("--explain needs a rule name")?);
            }
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    Ok(args)
}

/// Walks up from the current directory to the first `detlint.toml`.
fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("detlint.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        }
    }
}

fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("detlint.toml");
    if !path.is_file() {
        return Ok(Config::default());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    Config::parse(&text)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("detlint: {msg}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in RULES {
            println!("{:<20} {}", rule.name, rule.summary);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(name) = &args.explain {
        match rule_info(name) {
            Some(rule) => {
                println!("{} — {}\n\n{}", rule.name, rule.summary, rule.explain);
                return ExitCode::SUCCESS;
            }
            None => {
                eprintln!("detlint: unknown rule `{name}` (try --list-rules)");
                return ExitCode::from(2);
            }
        }
    }

    let root = args.root.clone().unwrap_or_else(find_root);
    let config = match load_config(&root) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("detlint: {msg}");
            return ExitCode::from(2);
        }
    };
    let paths = if args.paths.is_empty() {
        None
    } else {
        Some(args.paths.as_slice())
    };
    let outcome = match scan(&root, &config, paths) {
        Ok(outcome) => outcome,
        Err(msg) => {
            eprintln!("detlint: {msg}");
            return ExitCode::from(2);
        }
    };

    match args.format {
        Format::Json => println!("{}", render_json(&outcome.findings)),
        Format::Text => {
            print!("{}", render_text(&outcome.findings));
            if outcome.findings.is_empty() {
                eprintln!(
                    "detlint: {} files scanned, no findings",
                    outcome.files_scanned
                );
            } else {
                eprintln!(
                    "detlint: {} finding(s) in {} files scanned",
                    outcome.findings.len(),
                    outcome.files_scanned
                );
            }
        }
    }
    if outcome.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
