//! The brace-matched scope tree — detlint's second phase.
//!
//! The token rules in [`crate::rules`] are deliberately flat: they see a
//! token stream and a line number. The merge-contract rules (DESIGN.md
//! §8.5) need more: *where* a token sits — inside which `fn`, which
//! `impl`, which closure. This module builds just enough structure to
//! answer that: a tree of brace-delimited scopes with classified
//! headers (modules, fns, impls, type declarations, closures), no full
//! Rust grammar.
//!
//! The classification is header-driven. For every `{` the builder looks
//! back to the start of the "header" (the tokens since the last `;`,
//! `{`, or `}`) and decides what kind of scope the brace opens:
//!
//! * a closure, when the header ends in `|params|` (optionally followed
//!   by `-> Type`) — `Box::new(move |ctx, shard: &mut Pop| {` is the
//!   canonical scheduler-handler shape;
//! * an item, when the header carries `fn` / `impl` / `mod` / `struct` /
//!   `enum` / `trait` (names and, for impls, the trait/type split are
//!   extracted);
//! * otherwise an anonymous block (control flow, match arms, struct
//!   literals — the rules only need the nesting).
//!
//! Everything is index-based over the caller's token slice, so rules can
//! ask "which scopes contain token `i`" and walk parents to the root.

use crate::lexer::{Tok, TokKind};

/// What a scope's header said it is.
#[derive(Clone, Debug, PartialEq)]
pub enum ScopeKind {
    /// The whole file (has no braces of its own).
    Root,
    /// `mod name { … }`.
    Module(String),
    /// `fn name(…) { … }` (free fn or method).
    Fn(String),
    /// `impl [Trait for] Type { … }`.
    Impl {
        /// The implemented type's last path segment (`ShardedScheduler`).
        type_name: String,
        /// The trait's last path segment, for `impl Trait for Type`.
        trait_name: Option<String>,
    },
    /// `struct Name { … }`.
    Struct(String),
    /// `enum Name { … }`.
    Enum(String),
    /// `trait Name { … }`.
    Trait(String),
    /// `|params| { … }` — the params are the first identifier of each
    /// pattern, in order (`|ctx, (k, v)|` yields `["ctx", "k"]`).
    Closure(Vec<String>),
    /// Any other brace pair: blocks, match arms, struct literals.
    Block,
}

/// One scope: a brace pair plus its classified header.
#[derive(Clone, Debug)]
pub struct Scope {
    /// Classification from the header tokens.
    pub kind: ScopeKind,
    /// Index into [`ScopeTree::scopes`] of the enclosing scope (the root
    /// points at itself).
    pub parent: usize,
    /// Token index where the header starts (just past the previous `;`,
    /// `{`, or `}`); the header is `tokens[header_start..open]`.
    pub header_start: usize,
    /// Token index of the opening `{` (0 for the root).
    pub open: usize,
    /// Token index one past the matching `}` coverage: the scope covers
    /// tokens in `open..=close`. The root's `close` is `tokens.len()`.
    pub close: usize,
    /// 1-based line of the opening brace (1 for the root).
    pub line: u32,
}

/// The scope tree for one file. `scopes[0]` is always the root.
#[derive(Clone, Debug)]
pub struct ScopeTree {
    /// Every scope, in opening order (pre-order).
    pub scopes: Vec<Scope>,
}

fn ident(tokens: &[Tok], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct(tokens: &[Tok], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

impl ScopeTree {
    /// Builds the tree for a lexed file.
    pub fn build(tokens: &[Tok]) -> ScopeTree {
        let mut scopes = vec![Scope {
            kind: ScopeKind::Root,
            parent: 0,
            header_start: 0,
            open: 0,
            close: tokens.len(),
            line: 1,
        }];
        // Stack of open scope indices; root stays at the bottom.
        let mut stack = vec![0usize];
        // Start of the current header: one past the last `;`/`{`/`}`.
        let mut header_start = 0usize;
        let mut i = 0;
        while i < tokens.len() {
            match punct(tokens, i) {
                Some('{') => {
                    let parent = *stack.last().expect("root never pops");
                    let kind = classify_header(&tokens[header_start..i]);
                    let line = tokens[i].line;
                    scopes.push(Scope {
                        kind,
                        parent,
                        header_start,
                        open: i,
                        close: tokens.len(), // patched when the `}` arrives
                        line,
                    });
                    stack.push(scopes.len() - 1);
                    header_start = i + 1;
                }
                Some('}') => {
                    if stack.len() > 1 {
                        let idx = stack.pop().expect("checked non-root");
                        scopes[idx].close = i;
                    }
                    // Tolerate stray `}` (macro fragments): stay at root.
                    header_start = i + 1;
                }
                Some(';') => header_start = i + 1,
                _ => {}
            }
            i += 1;
        }
        ScopeTree { scopes }
    }

    /// Indices of every scope containing token `i`, innermost first
    /// (excludes the root).
    pub fn enclosing(&self, i: usize) -> Vec<usize> {
        let mut found: Vec<usize> = self
            .scopes
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, s)| s.open <= i && i <= s.close)
            .map(|(idx, _)| idx)
            .collect();
        // Pre-order listing means deeper scopes come later; innermost
        // first is the reverse.
        found.reverse();
        found
    }

    /// Renders the tree for `detlint --list-scopes` (one scope per line,
    /// indented by depth).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (idx, scope) in self.scopes.iter().enumerate() {
            let depth = self.depth(idx);
            let label = match &scope.kind {
                ScopeKind::Root => "root".to_string(),
                ScopeKind::Module(n) => format!("mod {n}"),
                ScopeKind::Fn(n) => format!("fn {n}"),
                ScopeKind::Impl {
                    type_name,
                    trait_name: Some(t),
                } => format!("impl {t} for {type_name}"),
                ScopeKind::Impl {
                    type_name,
                    trait_name: None,
                } => format!("impl {type_name}"),
                ScopeKind::Struct(n) => format!("struct {n}"),
                ScopeKind::Enum(n) => format!("enum {n}"),
                ScopeKind::Trait(n) => format!("trait {n}"),
                ScopeKind::Closure(params) => format!("closure |{}|", params.join(", ")),
                ScopeKind::Block => "block".to_string(),
            };
            out.push_str(&format!(
                "{:indent$}{label} @ line {}\n",
                "",
                scope.line,
                indent = depth * 2
            ));
        }
        out
    }

    fn depth(&self, mut idx: usize) -> usize {
        let mut d = 0;
        while idx != 0 {
            idx = self.scopes[idx].parent;
            d += 1;
        }
        d
    }
}

/// Classifies the tokens between the previous statement boundary and an
/// opening `{`.
fn classify_header(header: &[Tok]) -> ScopeKind {
    if header.is_empty() {
        return ScopeKind::Block;
    }
    if let Some(params) = closure_params(header) {
        return ScopeKind::Closure(params);
    }
    let mut i = 0;
    while i < header.len() {
        match ident(header, i) {
            Some("fn") => {
                let name = ident(header, i + 1).unwrap_or("_").to_string();
                return ScopeKind::Fn(name);
            }
            Some("impl") => return classify_impl(&header[i + 1..]),
            Some("mod") => {
                let name = ident(header, i + 1).unwrap_or("_").to_string();
                return ScopeKind::Module(name);
            }
            Some("struct") => {
                let name = ident(header, i + 1).unwrap_or("_").to_string();
                return ScopeKind::Struct(name);
            }
            Some("enum") => {
                let name = ident(header, i + 1).unwrap_or("_").to_string();
                return ScopeKind::Enum(name);
            }
            Some("trait") => {
                let name = ident(header, i + 1).unwrap_or("_").to_string();
                return ScopeKind::Trait(name);
            }
            // Control flow settles it: `if`, `match`, `for`, … open blocks
            // (`=` first means the keyword sits in an expression, e.g.
            // `let x = match …`, which is still a block).
            Some("if" | "else" | "match" | "while" | "loop" | "for" | "unsafe" | "async") => {
                return ScopeKind::Block;
            }
            _ => {}
        }
        i += 1;
    }
    ScopeKind::Block
}

/// `impl [<generics>] [Trait for] Type` → the trait/type names. The
/// header slice starts just after the `impl` keyword.
fn classify_impl(header: &[Tok]) -> ScopeKind {
    let mut angle = 0isize;
    // Idents seen at angle-depth 0, split at a depth-0 `for`.
    let mut before_for: Vec<String> = Vec::new();
    let mut after_for: Vec<String> = Vec::new();
    let mut saw_for = false;
    for (i, tok) in header.iter().enumerate() {
        match &tok.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Ident(s) if angle == 0 => match s.as_str() {
                "for" => saw_for = true,
                "where" => break,
                "dyn" | "mut" | "const" => {}
                _ => {
                    // Skip path-separator noise: `a::b` keeps only real
                    // segments, which is what we collect anyway.
                    let _ = i;
                    if saw_for {
                        after_for.push(s.clone());
                    } else {
                        before_for.push(s.clone());
                    }
                }
            },
            _ => {}
        }
    }
    if saw_for {
        ScopeKind::Impl {
            type_name: after_for.last().cloned().unwrap_or_else(|| "_".into()),
            trait_name: Some(before_for.last().cloned().unwrap_or_else(|| "_".into())),
        }
    } else {
        ScopeKind::Impl {
            type_name: before_for.last().cloned().unwrap_or_else(|| "_".into()),
            trait_name: None,
        }
    }
}

/// If the header ends in a closure parameter list — `… |params|` or
/// `… |params| -> Type` — returns the first identifier of each
/// parameter pattern.
fn closure_params(header: &[Tok]) -> Option<Vec<String>> {
    // Find the closing `|`: the last pipe that is followed by nothing or
    // by a `-> Type` return annotation.
    let mut close = None;
    for (i, tok) in header.iter().enumerate().rev() {
        if tok.kind == TokKind::Punct('|') {
            let rest = &header[i + 1..];
            let ret_annot =
                rest.is_empty() || (punct(rest, 0) == Some('-') && punct(rest, 1) == Some('>'));
            if ret_annot {
                close = Some(i);
            }
            break; // only the last pipe can close the param list
        }
    }
    let close = close?;
    // The matching opening `|` is the nearest pipe before it (parameter
    // patterns and type annotations never contain a bare `|`).
    let open = header[..close]
        .iter()
        .rposition(|t| t.kind == TokKind::Punct('|'))?;
    // A `||` pair is the zero-parameter closure; anything else splits at
    // top-level commas, taking each pattern's first identifier.
    let mut params = Vec::new();
    let body = &header[open + 1..close];
    let mut depth = 0isize;
    let mut want_ident = true;
    for (k, tok) in body.iter().enumerate() {
        match &tok.kind {
            TokKind::Punct('(' | '[' | '<') => depth += 1,
            TokKind::Punct(')' | ']' | '>') => depth -= 1,
            TokKind::Punct(',') if depth == 0 => want_ident = true,
            TokKind::Punct(':') if depth == 0 => want_ident = false,
            TokKind::Ident(s) if want_ident && s != "mut" && s != "ref" => {
                let _ = k;
                params.push(s.clone());
                want_ident = false;
            }
            _ => {}
        }
    }
    Some(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> ScopeTree {
        ScopeTree::build(&lex(src).tokens)
    }

    fn kinds(src: &str) -> Vec<ScopeKind> {
        tree(src).scopes.into_iter().map(|s| s.kind).collect()
    }

    #[test]
    fn items_are_classified_and_named() {
        let src = "mod m { struct S { x: u32 } enum E { A } trait T { fn f(&self); } \
                   impl T for S { fn f(&self) { } } }";
        let kinds = kinds(src);
        assert!(kinds.contains(&ScopeKind::Module("m".into())));
        assert!(kinds.contains(&ScopeKind::Struct("S".into())));
        assert!(kinds.contains(&ScopeKind::Enum("E".into())));
        assert!(kinds.contains(&ScopeKind::Trait("T".into())));
        assert!(kinds.contains(&ScopeKind::Impl {
            type_name: "S".into(),
            trait_name: Some("T".into()),
        }));
        assert!(kinds.contains(&ScopeKind::Fn("f".into())));
    }

    #[test]
    fn inherent_impl_with_generics() {
        let src = "impl<S: 'static> ShardedScheduler<S> { fn run(&mut self) { } }";
        let kinds = kinds(src);
        assert!(kinds.contains(&ScopeKind::Impl {
            type_name: "ShardedScheduler".into(),
            trait_name: None,
        }));
    }

    #[test]
    fn trait_impl_on_path_type_takes_last_segment() {
        let src = "impl fmt::Display for report::ObsReport { fn fmt(&self) { } }";
        assert!(kinds(src).contains(&ScopeKind::Impl {
            type_name: "ObsReport".into(),
            trait_name: Some("Display".into()),
        }));
    }

    #[test]
    fn handler_closure_params_are_extracted() {
        let src =
            "fn f() { schedule(Box::new(move |ctx, shard: &mut PopShard| { ctx.emit(e); })); }";
        let kinds = kinds(src);
        assert!(
            kinds.contains(&ScopeKind::Closure(vec!["ctx".into(), "shard".into()])),
            "{kinds:?}"
        );
    }

    #[test]
    fn nested_closures_nest() {
        let src = "fn f() { g(|a| { h(move |b, c| { b + c }); }); }";
        let t = tree(src);
        let inner = t
            .scopes
            .iter()
            .position(|s| s.kind == ScopeKind::Closure(vec!["b".into(), "c".into()]))
            .expect("inner closure found");
        let outer = t
            .scopes
            .iter()
            .position(|s| s.kind == ScopeKind::Closure(vec!["a".into()]))
            .expect("outer closure found");
        // inner's parent chain passes through outer.
        let mut p = t.scopes[inner].parent;
        let mut seen_outer = false;
        while p != 0 {
            if p == outer {
                seen_outer = true;
            }
            p = t.scopes[p].parent;
        }
        assert!(seen_outer, "{}", t.render());
    }

    #[test]
    fn zero_param_and_pattern_params() {
        let src = "fn f() { a(|| { 1 }); b(|(k, v), mut n| { k }); }";
        let kinds = kinds(src);
        assert!(kinds.contains(&ScopeKind::Closure(vec![])));
        assert!(kinds.contains(&ScopeKind::Closure(vec!["k".into(), "n".into()])));
    }

    #[test]
    fn closure_with_return_type() {
        let src = "fn f() { let g = |x: u32| -> u64 { x as u64 }; }";
        assert!(kinds(src).contains(&ScopeKind::Closure(vec!["x".into()])));
    }

    #[test]
    fn match_arms_with_or_patterns_are_blocks_not_closures() {
        let src = "fn f(x: E) { match x { A | B => { 1 } C => { 2 } } }";
        let kinds = kinds(src);
        assert!(
            !kinds.iter().any(|k| matches!(k, ScopeKind::Closure(_))),
            "{kinds:?}"
        );
    }

    #[test]
    fn control_flow_and_struct_literals_are_blocks() {
        let src =
            "fn f() { if x || y { } for i in 0..n { } let s = S { a: 1 }; match m { _ => { } } }";
        let kinds = kinds(src);
        let blocks = kinds.iter().filter(|k| **k == ScopeKind::Block).count();
        assert!(blocks >= 4, "{kinds:?}");
        assert!(!kinds.iter().any(|k| matches!(k, ScopeKind::Closure(_))));
    }

    #[test]
    fn braces_in_strings_chars_and_comments_do_not_open_scopes() {
        let src = "fn f() { let a = \"{ not a scope }\"; let b = '{'; let c = '}'; \
                   /* { nested /* { */ } */ let d = r#\"{\"#; }";
        let t = tree(src);
        // Only the root and fn f's body.
        assert_eq!(t.scopes.len(), 2, "{}", t.render());
    }

    #[test]
    fn macro_bodies_nest_without_panicking() {
        let src = "macro_rules! m { ($x:expr) => { { $x + 1 } }; } fn f() { m!(2); }";
        let t = tree(src);
        assert!(t.scopes.len() >= 4, "{}", t.render());
        assert!(t.scopes.iter().any(|s| s.kind == ScopeKind::Fn("f".into())));
    }

    #[test]
    fn enclosing_walks_innermost_first() {
        let src = "impl S { fn merge(&mut self) { for x in v { touch(x); } } }";
        let t = tree(src);
        let lexed = lex(src);
        let touch = lexed
            .tokens
            .iter()
            .position(|tok| tok.kind == TokKind::Ident("touch".into()))
            .unwrap();
        let chain = t.enclosing(touch);
        assert_eq!(chain.len(), 3, "{}", t.render());
        assert_eq!(t.scopes[chain[0]].kind, ScopeKind::Block); // the for body
        assert_eq!(t.scopes[chain[1]].kind, ScopeKind::Fn("merge".into()));
        assert!(matches!(t.scopes[chain[2]].kind, ScopeKind::Impl { .. }));
    }

    #[test]
    fn unbalanced_braces_are_tolerated() {
        let t1 = tree("fn f() { ");
        assert_eq!(t1.scopes.len(), 2);
        assert_eq!(t1.scopes[1].close, t1.scopes[0].close);
        let t2 = tree("} fn g() { }");
        assert!(t2
            .scopes
            .iter()
            .any(|s| s.kind == ScopeKind::Fn("g".into())));
    }

    #[test]
    fn render_indents_by_depth() {
        let out = tree("mod m { fn f() { if x { } } }").render();
        assert!(out.contains("root"));
        assert!(out.contains("  mod m"));
        assert!(out.contains("    fn f"));
        assert!(out.contains("      block"));
    }
}
