//! The determinism & safety rules, evaluated over lexed token streams.
//!
//! Every rule exists to defend one property: a livescope trace is a pure
//! function of `(config, seed)`. Hash-order iteration, wall-clock reads,
//! and ambient RNG are the three ways that property silently breaks;
//! `unsafe` and `todo!`/`unimplemented!` are the safety hazards the
//! workspace bans outright.

use crate::lexer::{Tok, TokKind};

/// One rule violation.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// Rule id (kebab-case, stable — used by `detlint::allow(...)`).
    pub rule: &'static str,
    /// Path of the offending file, as scanned.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// Static description of a rule, for `--list-rules` / `--explain`.
pub struct RuleInfo {
    pub name: &'static str,
    pub summary: &'static str,
    pub explain: &'static str,
}

/// Every rule detlint knows, in evaluation order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "hash-iter",
        summary: "iteration over a HashMap/HashSet observes hash order",
        explain: "\
Iterating, draining, or extending-from a HashMap/HashSet visits entries in
hash order, which varies across std versions, platforms, and (with a
randomized hasher) runs. Any event sequence, trace line, or float
accumulation derived from that order breaks the byte-reproducible-trace
contract (DESIGN.md \u{00a7}8).

Fix: use BTreeMap/BTreeSet when the collection is ever iterated, or
collect into a Vec and sort it immediately (`let mut v: Vec<_> =
m.keys().collect(); v.sort();` is recognized and allowed).

Suppress (needs a reason):
    // detlint::allow(hash-iter) — <why order cannot leak into results>",
    },
    RuleInfo {
        name: "wall-clock",
        summary: "wall-clock read (Instant::now / SystemTime) in sim code",
        explain: "\
Simulation code must tell time with SimTime only. `Instant::now()`,
`SystemTime`, and friends smuggle host wall-clock into results, so two
runs of the same (config, seed) diverge. The only sanctioned uses are the
`profile`-feature-gated event profiler (code under
`#[cfg(feature = \"profile\")]` is exempt) and the bench binaries
(exempted by path in detlint.toml).

Fix: thread `SimTime` from the scheduler; for performance measurement use
the `profile` feature or a bench.

Suppress (needs a reason):
    // detlint::allow(wall-clock) — <why this cannot affect a trace>",
    },
    RuleInfo {
        name: "ambient-rng",
        summary: "ambient RNG (thread_rng / from_entropy / rand::random)",
        explain: "\
`thread_rng()`, `SeedableRng::from_entropy()`, and `rand::random()` seed
from the OS, so results change every run. All livescope randomness must
flow from the scenario seed through `RngPool::stream_seed` /
`SmallRng::seed_from_u64` so every experiment is replayable.

Fix: accept a seed (or an `&mut SmallRng`) from the caller.

Suppress (needs a reason):
    // detlint::allow(ambient-rng) — <why reproducibility is not needed>",
    },
    RuleInfo {
        name: "unordered-float-sum",
        summary: "f32/f64 sum over a hash-ordered source",
        explain: "\
Float addition is not associative: summing the same values in a different
order gives a different result in the last bits, which is enough to break
byte-identical traces and flaky-compare figures. Summing `.values()` of a
HashMap is the canonical instance — the order is arbitrary.

Fix: iterate a BTreeMap/BTreeSet, or collect and sort before summing.
(Integer sums are order-independent, but hash iteration is still flagged
by hash-iter; prefer ordered containers either way.)

Suppress (needs a reason):
    // detlint::allow(unordered-float-sum) — <why the sum never lands in
    a trace or figure>",
    },
    RuleInfo {
        name: "unsafe-code",
        summary: "`unsafe` is banned; crate roots must forbid it",
        explain: "\
The workspace is 100% safe Rust (vendor/ excepted, by allowlist). Beyond
flagging any `unsafe` token, the rule requires every crate root (lib.rs,
main.rs, bin/bench/example/test roots) to carry
`#![forbid(unsafe_code)]`, so the compiler enforces the ban even for code
detlint never sees.

Fix: add `#![forbid(unsafe_code)]` at the top of the crate root; rewrite
the unsafe block in safe Rust.

Suppress (needs a reason):
    // detlint::allow(unsafe-code) — <safety argument and reviewer>",
    },
    RuleInfo {
        name: "todo-panic",
        summary: "todo!/unimplemented! in non-test code",
        explain: "\
`todo!()` and `unimplemented!()` in reachable non-test code turn a
forgotten branch into a runtime abort mid-experiment. Test code
(`#[cfg(test)]` modules, `#[test]` fns, integration-test roots) may use
them while a suite is under construction.

Fix: implement the branch, or return a proper error.

Suppress (needs a reason):
    // detlint::allow(todo-panic) — <tracking issue / why unreachable>",
    },
    RuleInfo {
        name: "shared-mutable-state",
        summary: "interior mutability / static mut in shard-executed code",
        explain: "\
Shard-executed code (crates/sim, crates/cdn, crates/core — or any file
carrying `// detlint::scope(shard)`) runs inside ShardedScheduler lanes
and merges its effects through the \u{00a7}9 epoch-barrier contract. `static
mut`, `RefCell`/`Cell`, `Mutex`/`RwLock`, and `Ordering::Relaxed` atomics
all smuggle state *around* that contract: whichever lane touches the
shared cell first wins, so the merged trace depends on lane scheduling.

Fix: own the state inside the shard struct and mutate it through `&mut`
(the scheduler hands each lane exclusive access); cross-shard aggregation
belongs in a `merge` impl, not a shared cell.

Suppress (needs a reason):
    // detlint::allow(shared-mutable-state) — <why no lane can observe
    another's writes>",
    },
    RuleInfo {
        name: "direct-trace-emit",
        summary: "trace sink written directly inside a scheduler handler",
        explain: "\
Inside a ShardedScheduler handler (a closure or fn taking an `EventCtx`),
trace events must go through `ctx.emit(…)`: the EventCtx buffers them
per-shard so the epoch barrier can merge lanes into one deterministic
stream. Calling `.emit(…)` on a captured telemetry handle, or
`.span_open(…)`/`.span_close(…)` on a tracer, writes the global sink
mid-epoch — interleaving depends on lane timing and the trace stops
being byte-stable.

Fix: build the TraceEvent and pass it to the handler's EventCtx
parameter. Legacy single-lane `Ticker` closures (`|sched, world|`) are
not handlers and may emit directly.

Suppress (needs a reason):
    // detlint::allow(direct-trace-emit) — <why this sink is lane-local>",
    },
    RuleInfo {
        name: "span-balance",
        summary: "span opens/closes don't pair, or ids drift from span.rs",
        explain: "\
Causal spans (DESIGN.md \u{00a7}11) only reconstruct if every `SpanOpen` has a
matching `SpanClose` with the same id. detlint inventories every emission
site across the scan set and checks (a) cross-file: each SpanKind opened
somewhere is closed somewhere and vice versa; (b) per-site: the `id:`
field is built by the registry helper for that kind
(`viewer_session_span` for ViewerSession, …) — or by `span_id(kind, …)`
with the same kind — with exactly the identity-field count the
`crates/telemetry/src/span.rs` registry defines. A mismatched helper or
arity means the open and close hash to different ids and the span never
closes in analysis.

Fix: use the registry helper for the event's kind, passing its documented
identity fields; if the registry itself changed, update span.rs, its
pinned-id tests, and detlint's SPAN_REGISTRY together.

Suppress (needs a reason):
    // detlint::allow(span-balance) — <why the id is correct anyway>",
    },
    RuleInfo {
        name: "section-discipline",
        summary: "a profile Section stamp is dropped immediately",
        explain: "\
`Section::begin()` returns a SectionStamp that must survive until the
matching `.end(stamp)`: `let _ = sec.begin()` or a bare `sec.begin();`
drops it on the same line, so the section records zero time (or, for
RAII-style stamps, closes before the work runs) and the \u{00a7}10 profile
report silently under-counts.

Fix: bind the stamp to a named local (`let stamp = sec.begin();`) and
pass it to `.end(stamp)`; returning the stamp or feeding it straight
into `.end(…)` is fine.

Suppress (needs a reason):
    // detlint::allow(section-discipline) — <why dropping the stamp is
    intended>",
    },
    RuleInfo {
        name: "unordered-float-merge",
        summary: "float accumulation over hash order inside a merge impl",
        explain: "\
`merge`/`fold` impls of mergeable accumulators (StreamingCampaign,
QuantileSketch, ObsReport, OnlineStats) combine per-shard partials into
the numbers that land in figures. Float addition is not associative, so
folding `+=`/`sum()` while iterating a HashMap/HashSet makes the merged
value depend on hash order — the one place the workspace can least
afford it, because shard merges happen on every epoch barrier.

Fix: keep mergeable state in BTreeMap/Vec, or collect and sort the keys
before folding.

Suppress (needs a reason):
    // detlint::allow(unordered-float-merge) — <why the fold is
    order-independent>",
    },
    RuleInfo {
        name: "stale-allowlist",
        summary: "a detlint.toml allowlist entry that suppresses nothing",
        explain: "\
Every detlint.toml entry is a standing hole in the gate, so entries must
pay rent: an entry whose path prefix matches no scanned file, or that
names a rule it never actually suppresses a finding for, is dead weight
that will silently excuse future regressions. The allowlist audit (on by
default for workspace scans; `--no-audit-allowlist` to skip) reports
each such entry as a finding at its line in detlint.toml.

Fix: delete the stale entry (or the stale rule name inside it). If the
entry is deliberately pre-emptive, suppress the audit instead of keeping
it unexplained.

Suppress: stale-allowlist findings point at detlint.toml, which has no
code comments — fix by pruning, or scan with --no-audit-allowlist.",
    },
    RuleInfo {
        name: "missing-reason",
        summary: "a detlint::allow(...) directive without a reason",
        explain: "\
Suppressions are part of the determinism contract's audit trail: every
`// detlint::allow(<rule>)` must carry ` \u{2014} <reason>` after the
closing parenthesis so reviews can judge it. A bare directive still
suppresses the underlying finding but is itself reported, so the gate
stays red until a reason is written.

Fix: append \u{201c} \u{2014} <reason>\u{201d} (an ASCII \u{201c}- reason\u{201d} also works).",
    },
];

/// Looks up a rule by name.
pub fn rule_info(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// Iteration-producing methods on hash containers.
pub(crate) const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Idents that mark a statement as order-restoring (the
/// "immediately-sorted collect" escape hatch).
const ORDER_RESTORING: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_by_cached_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

pub(crate) fn ident(tokens: &[Tok], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s),
        _ => None,
    }
}

pub(crate) fn punct(tokens: &[Tok], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Does `ident :: ident :: …` starting at `i` spell exactly `segs`
/// (e.g. `["Instant", "now"]` matches `Instant::now` and the tail of
/// `std::time::Instant::now`)?
pub(crate) fn matches_path(tokens: &[Tok], i: usize, segs: &[&str]) -> bool {
    let mut at = i;
    for (k, seg) in segs.iter().enumerate() {
        if ident(tokens, at) != Some(seg) {
            return false;
        }
        at += 1;
        if k + 1 < segs.len() {
            if punct(tokens, at) != Some(':') || punct(tokens, at + 1) != Some(':') {
                return false;
            }
            at += 2;
        }
    }
    true
}

/// Index of the next `;` at or after `i` (no nesting awareness — a `;`
/// inside a closure ends the window early, which only makes the
/// sorted-collect escape more conservative).
pub(crate) fn statement_end(tokens: &[Tok], i: usize) -> usize {
    let mut at = i;
    while at < tokens.len() {
        if punct(tokens, at) == Some(';') {
            return at;
        }
        at += 1;
    }
    tokens.len()
}

/// Index just past the previous `;`/`{`/`}` before `i` — the statement's
/// first token, so escape scans see a `let x: BTreeMap<_, _> = …` type
/// annotation that precedes the hazard.
pub(crate) fn statement_start(tokens: &[Tok], i: usize) -> usize {
    let mut at = i;
    while at > 0 {
        if matches!(punct(tokens, at - 1), Some(';') | Some('{') | Some('}')) {
            return at;
        }
        at -= 1;
    }
    0
}

fn span_has_ident(tokens: &[Tok], from: usize, to: usize, names: &[&str]) -> bool {
    (from..to.min(tokens.len())).any(|k| ident(tokens, k).is_some_and(|s| names.contains(&s)))
}

/// Attribute kinds the rules care about.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AttrKind {
    /// `#[cfg(feature = "profile")]` (possibly inside any/all).
    ProfileGated,
    /// `#[cfg(test)]` or `#[test]`.
    TestOnly,
    Other,
}

/// `(start, end)` token-index ranges (inclusive) covered by an attribute.
pub struct GuardedRange {
    pub kind: AttrKind,
    pub start: usize,
    pub end: usize,
}

/// Finds every outer attribute and the token range of the item or
/// statement it gates: up to the matching `}` of the first brace opened
/// at attribute depth, or the first `;` before any such brace.
pub fn guarded_ranges(tokens: &[Tok]) -> Vec<GuardedRange> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if punct(tokens, i) == Some('#') && punct(tokens, i + 1) == Some('[') {
            // Scan the attribute body to its closing `]`.
            let mut depth = 1usize;
            let mut at = i + 2;
            let mut profile = false;
            let mut is_cfg_test = false;
            let mut is_test =
                matches!(ident(tokens, i + 2), Some("test")) && punct(tokens, i + 3) == Some(']');
            let mut saw_cfg = false;
            let mut saw_feature = false;
            let mut saw_not = false;
            while at < tokens.len() && depth > 0 {
                match &tokens[at].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => depth -= 1,
                    TokKind::Ident(s) if s == "cfg" => saw_cfg = true,
                    TokKind::Ident(s) if s == "feature" => saw_feature = true,
                    TokKind::Ident(s) if s == "not" => saw_not = true,
                    TokKind::Ident(s) if s == "test" && saw_cfg && !saw_not => {
                        is_cfg_test = true;
                    }
                    TokKind::Str(s) if s == "profile" && saw_cfg && saw_feature && !saw_not => {
                        profile = true;
                    }
                    _ => {}
                }
                at += 1;
            }
            if is_cfg_test {
                is_test = true;
            }
            // `at` now sits just past `]`. Skip stacked attributes so the
            // guard covers the eventual item.
            let mut item_start = at;
            while punct(tokens, item_start) == Some('#')
                && punct(tokens, item_start + 1) == Some('[')
            {
                let mut d = 1usize;
                let mut k = item_start + 2;
                while k < tokens.len() && d > 0 {
                    match punct(tokens, k) {
                        Some('[') => d += 1,
                        Some(']') => d -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                item_start = k;
            }
            // Range end: matching `}` of the first `{`, or a bare `;`.
            let mut brace = 0isize;
            let mut end = tokens.len().saturating_sub(1);
            let mut k = item_start;
            while k < tokens.len() {
                match punct(tokens, k) {
                    Some('{') => brace += 1,
                    Some('}') => {
                        brace -= 1;
                        if brace == 0 {
                            end = k;
                            break;
                        }
                    }
                    Some(';') if brace == 0 => {
                        end = k;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            let kind = if profile {
                AttrKind::ProfileGated
            } else if is_test {
                AttrKind::TestOnly
            } else {
                AttrKind::Other
            };
            if kind != AttrKind::Other {
                ranges.push(GuardedRange {
                    kind,
                    start: i,
                    end,
                });
            }
            i = at;
        } else {
            i += 1;
        }
    }
    ranges
}

fn in_range(ranges: &[GuardedRange], kind: AttrKind, i: usize) -> bool {
    ranges
        .iter()
        .any(|r| r.kind == kind && r.start <= i && i <= r.end)
}

/// Collects identifiers bound to hash-ordered containers in this file:
/// `let` bindings (typed or constructed), struct/enum fields, and fn or
/// closure parameters whose type mentions HashMap/HashSet.
pub(crate) fn hash_bindings(tokens: &[Tok]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let mut register = |n: &str| {
        if !names.iter().any(|x| x == n) {
            names.push(n.to_string());
        }
    };
    let hashy = |s: &str| s == "HashMap" || s == "HashSet";
    let mut i = 0;
    while i < tokens.len() {
        // `let [mut] name = <rhs>` where the rhs head constructs a hash
        // container (`HashMap::new()`, `std::collections::HashSet::from(..)`).
        if ident(tokens, i) == Some("let") {
            let mut at = i + 1;
            if ident(tokens, at) == Some("mut") {
                at += 1;
            }
            if let Some(name) = ident(tokens, at) {
                let name = name.to_string();
                let after = at + 1;
                if punct(tokens, after) == Some('=') {
                    // Untyped: look at the expression head (idents/`::`
                    // run before the first `(` or `;`).
                    let mut k = after + 1;
                    while k < tokens.len() {
                        match &tokens[k].kind {
                            TokKind::Ident(s) if hashy(s) => {
                                register(&name);
                                break;
                            }
                            TokKind::Ident(_) | TokKind::Punct(':') => k += 1,
                            _ => break,
                        }
                    }
                }
                // Typed `let name: …` falls through to the generic
                // `ident :` scan below, which also handles it.
            }
        }
        // `name : <type…>` — struct field, fn param, closure param, or
        // typed let. Scan the type span (to `,` `;` `{` `)` `=` at outer
        // depth) for HashMap/HashSet.
        if let Some(name) = ident(tokens, i) {
            // Exclude path segments (`std::collections`) and `::` turbofish.
            let is_decl = punct(tokens, i + 1) == Some(':')
                && punct(tokens, i + 2) != Some(':')
                && punct(tokens, i.wrapping_sub(1)) != Some(':');
            if is_decl {
                let name = name.to_string();
                let mut angle = 0isize;
                let mut paren = 0isize;
                let mut k = i + 2;
                while k < tokens.len() {
                    match &tokens[k].kind {
                        TokKind::Ident(s) if hashy(s) => {
                            register(&name);
                            break;
                        }
                        TokKind::Punct('<') => angle += 1,
                        TokKind::Punct('>') => {
                            if angle == 0 {
                                break; // fn return arrow or closing generics
                            }
                            angle -= 1;
                        }
                        TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
                        TokKind::Punct(')') | TokKind::Punct(']') => {
                            if paren == 0 {
                                break;
                            }
                            paren -= 1;
                        }
                        TokKind::Punct(',')
                        | TokKind::Punct(';')
                        | TokKind::Punct('{')
                        | TokKind::Punct('=')
                            if angle == 0 && paren == 0 =>
                        {
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        i += 1;
    }
    names
}

/// Context detlint computes per file before rule evaluation.
pub struct FileContext<'a> {
    pub path: &'a str,
    pub tokens: &'a [Tok],
    /// This file is a crate root and must carry `#![forbid(unsafe_code)]`.
    pub requires_forbid: bool,
}

/// Runs every rule over one file. Suppression directives are applied by
/// the caller (`livescope_detlint::scan`), not here.
pub fn check_file(ctx: &FileContext) -> Vec<Finding> {
    let tokens = ctx.tokens;
    let mut findings = Vec::new();
    let mut emit = |rule: &'static str, line: u32, message: String| {
        findings.push(Finding {
            rule,
            path: ctx.path.to_string(),
            line,
            message,
        });
    };
    let ranges = guarded_ranges(tokens);
    let bindings = hash_bindings(tokens);
    let is_test_path = ctx.path.split(['/', '\\']).any(|c| c == "tests");

    // --- unsafe-code: the forbid attribute requirement -------------------
    if ctx.requires_forbid {
        let has_forbid = tokens.windows(8).any(|w| {
            punct(w, 0) == Some('#')
                && punct(w, 1) == Some('!')
                && punct(w, 2) == Some('[')
                && ident(w, 3) == Some("forbid")
                && punct(w, 4) == Some('(')
                && ident(w, 5) == Some("unsafe_code")
                && punct(w, 6) == Some(')')
                && punct(w, 7) == Some(']')
        });
        if !has_forbid {
            emit(
                "unsafe-code",
                1,
                "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            );
        }
    }

    let mut hash_hits: Vec<(u32, &'static str, String)> = Vec::new();
    let mut record_hash_hit = |tokens: &[Tok], i: usize, line: u32, name: &str, via: &str| {
        // The sorted-collect escape: the statement containing the
        // iteration either mentions an order-restoring ident itself
        // (including in a `let x: BTreeMap<…> = …` annotation), or
        // collects and the *next* statement sorts the result.
        let start = statement_start(tokens, i);
        let end = statement_end(tokens, i);
        if span_has_ident(tokens, start, end, ORDER_RESTORING) {
            return;
        }
        if span_has_ident(tokens, start, end, &["collect"]) {
            let next_end = statement_end(tokens, end + 1);
            if span_has_ident(tokens, end + 1, next_end, ORDER_RESTORING) {
                return;
            }
        }
        // Float sums over hash order are the sharper finding.
        let mut float_sum = false;
        for k in i..end.min(tokens.len()) {
            if ident(tokens, k) == Some("sum")
                && punct(tokens, k + 1) == Some(':')
                && punct(tokens, k + 2) == Some(':')
                && punct(tokens, k + 3) == Some('<')
                && matches!(ident(tokens, k + 4), Some("f64") | Some("f32"))
            {
                float_sum = true;
                break;
            }
        }
        let (rule, what): (&'static str, &str) = if float_sum {
            ("unordered-float-sum", "float sum over hash order")
        } else {
            ("hash-iter", "hash-order iteration")
        };
        if !hash_hits.iter().any(|(l, r, _)| *l == line && *r == rule) {
            hash_hits.push((
                    line,
                    rule,
                    format!("{what}: `{name}` is a HashMap/HashSet and `{via}` observes its order (use BTreeMap/BTreeSet or sort after collect)"),
                ));
        }
    };

    let mut i = 0;
    while i < tokens.len() {
        let line = tokens[i].line;
        match ident(tokens, i) {
            // --- wall-clock ---------------------------------------------
            Some("Instant")
                if matches_path(tokens, i, &["Instant", "now"])
                    && !in_range(&ranges, AttrKind::ProfileGated, i) =>
            {
                emit(
                    "wall-clock",
                    line,
                    "`Instant::now()` reads the host clock; use SimTime (or gate under the `profile` feature)".to_string(),
                );
            }
            Some("SystemTime") if !in_range(&ranges, AttrKind::ProfileGated, i) => {
                emit(
                    "wall-clock",
                    line,
                    "`SystemTime` reads the host clock; use SimTime".to_string(),
                );
            }
            Some("Utc") | Some("Local") | Some("Date")
                if punct(tokens, i + 1) == Some(':')
                    && punct(tokens, i + 2) == Some(':')
                    && ident(tokens, i + 3) == Some("now")
                    && !in_range(&ranges, AttrKind::ProfileGated, i) =>
            {
                // `Utc::now` / `Local::now` / `Date::now`.
                emit(
                    "wall-clock",
                    line,
                    "wall-clock date read; use SimTime".to_string(),
                );
            }
            // --- ambient-rng --------------------------------------------
            Some("thread_rng") => emit(
                "ambient-rng",
                line,
                "`thread_rng()` is OS-seeded; derive a SmallRng from the scenario seed".to_string(),
            ),
            Some("from_entropy") => emit(
                "ambient-rng",
                line,
                "`from_entropy()` is OS-seeded; use `seed_from_u64` with a pool-derived seed"
                    .to_string(),
            ),
            Some("rand") if matches_path(tokens, i, &["rand", "random"]) => emit(
                "ambient-rng",
                line,
                "`rand::random()` is OS-seeded; use a seeded SmallRng".to_string(),
            ),
            // --- todo-panic ---------------------------------------------
            Some(m @ ("todo" | "unimplemented"))
                if punct(tokens, i + 1) == Some('!')
                    && !is_test_path
                    && !in_range(&ranges, AttrKind::TestOnly, i) =>
            {
                emit(
                    "todo-panic",
                    line,
                    format!(
                        "`{m}!` in non-test code aborts at runtime; implement or return an error"
                    ),
                );
            }
            // --- unsafe-code --------------------------------------------
            Some("unsafe") => emit(
                "unsafe-code",
                line,
                "`unsafe` is banned in this workspace (see detlint --explain unsafe-code)"
                    .to_string(),
            ),
            // --- hash-iter / unordered-float-sum ------------------------
            Some(name) if bindings.iter().any(|b| b == name) => {
                // `name.iter()`-style method chains.
                if punct(tokens, i + 1) == Some('.') {
                    if let Some(m) = ident(tokens, i + 2) {
                        if HASH_ITER_METHODS.contains(&m) && punct(tokens, i + 3) == Some('(') {
                            let m = m.to_string();
                            record_hash_hit(tokens, i, line, name, &m);
                        }
                    }
                }
                // `for x in &name {` / `for x in name {`.
                if punct(tokens, i + 1) == Some('{') {
                    let mut back = i;
                    while back > 0
                        && (punct(tokens, back - 1) == Some('&')
                            || ident(tokens, back - 1) == Some("mut"))
                    {
                        back -= 1;
                    }
                    if back > 0 && ident(tokens, back - 1) == Some("in") {
                        record_hash_hit(tokens, i, line, name, "for … in");
                    }
                }
            }
            // `consumer.extend(<expr containing a hash binding>)`.
            Some("extend") if punct(tokens, i + 1) == Some('(') => {
                let mut depth = 0isize;
                let mut k = i + 1;
                while k < tokens.len() {
                    match punct(tokens, k) {
                        Some('(') => depth += 1,
                        Some(')') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {
                            if let Some(arg) = ident(tokens, k) {
                                // Direct `extend(&map)` — a chained
                                // `extend(map.iter())` is already caught
                                // by the method rule above.
                                if bindings.iter().any(|b| b == arg)
                                    && punct(tokens, k + 1) != Some('.')
                                {
                                    let arg = arg.to_string();
                                    record_hash_hit(tokens, k, tokens[k].line, &arg, "extend");
                                    break;
                                }
                            }
                        }
                    }
                    k += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    for (line, rule, message) in hash_hits {
        findings.push(Finding {
            rule,
            path: ctx.path.to_string(),
            line,
            message,
        });
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        check_file(&FileContext {
            path: "src/sample.rs",
            tokens: &lexed.tokens,
            requires_forbid: false,
        })
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        check(src).into_iter().map(|f| f.rule).collect()
    }

    // --- hash-iter ------------------------------------------------------

    #[test]
    fn hash_iter_flags_values_on_let_binding() {
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); for v in m.values() { use_(v); } }";
        assert_eq!(rules_of(src), vec!["hash-iter"]);
    }

    #[test]
    fn hash_iter_flags_for_over_borrowed_field() {
        let src =
            "struct S { forwards: HashMap<u16, u64> } fn f(s: &S) { for kv in &forwards { } }";
        // Field names are registered file-wide; `&forwards` iterates one.
        assert_eq!(rules_of(src), vec!["hash-iter"]);
    }

    #[test]
    fn hash_iter_flags_drain_and_extend_from() {
        let src = "fn f() {\n  let mut s = HashSet::new();\n  let mut v = Vec::new();\n  v.extend(&s);\n  s.drain();\n}";
        assert_eq!(rules_of(src), vec!["hash-iter", "hash-iter"]);
    }

    #[test]
    fn hash_iter_allows_sorted_collect() {
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); \
                   let mut v: Vec<_> = m.keys().copied().collect(); v.sort_unstable(); }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn hash_iter_allows_collect_into_btree() {
        let src = "fn f(m: &HashMap<u32, u32>) { let b: BTreeMap<u32, u32> = m.iter().map(|(k, v)| (*k, *v)).collect(); }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn hash_iter_ignores_lookups_and_btree() {
        let src = "fn f() { let mut m: HashMap<u32, u32> = HashMap::new(); m.insert(1, 2); \
                   let _ = m.get(&1); let b: BTreeMap<u32, u32> = BTreeMap::new(); \
                   for v in b.values() { use_(v); } }";
        assert!(rules_of(src).is_empty());
    }

    // --- unordered-float-sum -------------------------------------------

    #[test]
    fn float_sum_over_hash_values_is_the_sharper_finding() {
        let src = "fn f(m: &HashMap<u32, f64>) -> f64 { m.values().sum::<f64>() }";
        assert_eq!(rules_of(src), vec!["unordered-float-sum"]);
    }

    #[test]
    fn float_sum_over_vec_is_fine() {
        let src = "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }";
        assert!(rules_of(src).is_empty());
    }

    // --- wall-clock -----------------------------------------------------

    #[test]
    fn wall_clock_flags_instant_and_system_time() {
        let src = "fn f() { let t = std::time::Instant::now(); let s = SystemTime::now(); }";
        assert_eq!(rules_of(src), vec!["wall-clock", "wall-clock"]);
    }

    #[test]
    fn wall_clock_exempts_profile_gated_code() {
        let src = "fn f() { #[cfg(feature = \"profile\")] let t = std::time::Instant::now(); }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn wall_clock_in_strings_is_not_flagged() {
        let src = "fn f() { let s = \"Instant::now()\"; }";
        assert!(rules_of(src).is_empty());
    }

    // --- ambient-rng ----------------------------------------------------

    #[test]
    fn ambient_rng_flags_thread_rng_and_from_entropy() {
        let src = "fn f() { let mut r = thread_rng(); let s = SmallRng::from_entropy(); }";
        assert_eq!(rules_of(src), vec!["ambient-rng", "ambient-rng"]);
    }

    #[test]
    fn seeded_rng_is_fine() {
        let src = "fn f(seed: u64) { let mut r = SmallRng::seed_from_u64(seed); }";
        assert!(rules_of(src).is_empty());
    }

    // --- todo-panic -----------------------------------------------------

    #[test]
    fn todo_flagged_outside_tests() {
        let src = "fn f() { todo!(\"later\") }";
        assert_eq!(rules_of(src), vec!["todo-panic"]);
    }

    #[test]
    fn todo_allowed_in_cfg_test_mod_and_test_fn() {
        let src = "#[cfg(test)] mod tests { fn helper() { todo!() } } \
                   #[test] fn t() { unimplemented!() }";
        assert!(rules_of(src).is_empty());
    }

    // --- unsafe-code ----------------------------------------------------

    #[test]
    fn unsafe_token_is_flagged() {
        let src = "fn f() { unsafe { core::hint::unreachable_unchecked() } }";
        assert_eq!(rules_of(src), vec!["unsafe-code"]);
    }

    #[test]
    fn crate_root_without_forbid_is_flagged() {
        let lexed = lex("pub fn f() {}\n");
        let findings = check_file(&FileContext {
            path: "crates/x/src/lib.rs",
            tokens: &lexed.tokens,
            requires_forbid: true,
        });
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unsafe-code");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn crate_root_with_forbid_is_clean() {
        let lexed = lex("//! docs\n#![forbid(unsafe_code)]\npub fn f() {}\n");
        let findings = check_file(&FileContext {
            path: "crates/x/src/lib.rs",
            tokens: &lexed.tokens,
            requires_forbid: true,
        });
        assert!(findings.is_empty());
    }

    // --- misc engine behavior ------------------------------------------

    #[test]
    fn hazards_in_comments_are_ignored() {
        let src = "// Instant::now() and thread_rng() and unsafe\nfn f() {}\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn every_rule_has_info() {
        for name in [
            "hash-iter",
            "wall-clock",
            "ambient-rng",
            "unordered-float-sum",
            "unsafe-code",
            "todo-panic",
            "shared-mutable-state",
            "direct-trace-emit",
            "span-balance",
            "section-discipline",
            "unordered-float-merge",
            "stale-allowlist",
            "missing-reason",
        ] {
            assert!(rule_info(name).is_some(), "{name} missing from RULES");
        }
    }
}
