//! A small Rust lexer — just enough fidelity that rules match real
//! tokens instead of text that happens to sit inside a string literal or
//! a comment.
//!
//! Handles the token classes that trip up grep-style linters: nested
//! block comments, raw strings (`r#"…"#`), byte and raw-byte strings,
//! char literals vs lifetimes (`'a'` vs `'a`), raw identifiers
//! (`r#match`), and escape sequences. Numeric literals are lexed loosely
//! (a digit run with suffix); that is enough because no rule matches
//! numbers.

/// One lexed token with the 1-based line it starts on.
#[derive(Clone, Debug, PartialEq)]
pub struct Tok {
    pub line: u32,
    pub kind: TokKind,
}

/// Token classes the rules engine can see.
#[derive(Clone, Debug, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `for`, `unsafe`, …).
    Ident(String),
    /// String literal content (plain, raw, byte, raw-byte).
    Str(String),
    /// Char or byte-char literal (`'a'`, `b'\n'`); content irrelevant.
    CharLit,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal (content irrelevant to every rule).
    Num,
    /// A single punctuation character (`::` arrives as two `:`).
    Punct(char),
}

/// A comment with the line it starts on and whether nothing but
/// whitespace precedes it on that line (an "own-line" comment — used to
/// decide which line a suppression directive covers).
#[derive(Clone, Debug, PartialEq)]
pub struct Comment {
    pub line: u32,
    pub text: String,
    pub own_line: bool,
}

/// The lexer output: significant tokens plus comments.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    /// Whether a token has already been emitted on the current line.
    token_on_line: bool,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.token_on_line = false;
        }
        Some(c)
    }

    fn push(&mut self, line: u32, kind: TokKind) {
        self.token_on_line = true;
        self.out.tokens.push(Tok { line, kind });
    }

    fn lex_line_comment(&mut self) {
        let line = self.line;
        let own_line = !self.token_on_line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            text,
            own_line,
        });
    }

    fn lex_block_comment(&mut self) {
        let line = self.line;
        let own_line = !self.token_on_line;
        let mut text = String::new();
        let mut depth = 1usize;
        // `self.i` sits just past the opening `/*`.
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                    text.push_str("/*");
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth > 0 {
                        text.push_str("*/");
                    }
                }
                (Some(_), _) => {
                    let c = self.bump().expect("peeked");
                    text.push(c);
                }
                (None, _) => break, // unterminated; tolerate
            }
        }
        self.out.comments.push(Comment {
            line,
            text,
            own_line,
        });
    }

    /// Consumes a plain (escaped) string body; the opening quote is
    /// already consumed. Returns the content.
    fn lex_escaped_string(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    if let Some(e) = self.bump() {
                        text.push('\\');
                        text.push(e);
                    }
                }
                _ => text.push(c),
            }
        }
        text
    }

    /// Consumes a raw string body given the number of `#`s; the opening
    /// quote is already consumed.
    fn lex_raw_string(&mut self, hashes: usize) -> String {
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        text.push('"');
                        // Not the terminator: re-examine from here.
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        text
    }

    /// Char literal body after the opening `'` (which is consumed).
    fn lex_char_literal_body(&mut self) {
        // First content char (possibly an escape lead-in).
        if self.peek(0) == Some('\\') {
            self.bump();
            self.bump(); // the escaped char
        } else {
            self.bump();
        }
        // Consume the rest up to the closing quote (covers `\u{…}`).
        while let Some(c) = self.peek(0) {
            if c == '\'' {
                self.bump();
                break;
            }
            if c == '\n' {
                break; // malformed; tolerate
            }
            self.bump();
        }
    }

    fn lex_ident_at(&mut self, line: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(line, TokKind::Ident(name));
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => {
                    self.bump();
                    self.bump();
                    self.lex_line_comment();
                }
                '/' if self.peek(1) == Some('*') => {
                    self.bump();
                    self.bump();
                    self.lex_block_comment();
                }
                '"' => {
                    self.bump();
                    let s = self.lex_escaped_string();
                    self.push(line, TokKind::Str(s));
                }
                'r' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.bump();
                    let s = self.lex_raw_string(0);
                    self.push(line, TokKind::Str(s));
                }
                'r' if self.peek(1) == Some('#') => {
                    // r#"…"# raw string (any hash count) or r#ident.
                    let mut hashes = 0;
                    while self.peek(1 + hashes) == Some('#') {
                        hashes += 1;
                    }
                    if self.peek(1 + hashes) == Some('"') {
                        for _ in 0..hashes + 2 {
                            self.bump(); // r, #…#, "
                        }
                        let s = self.lex_raw_string(hashes);
                        self.push(line, TokKind::Str(s));
                    } else {
                        // Raw identifier: skip `r#`, lex the name.
                        self.bump();
                        self.bump();
                        self.lex_ident_at(line);
                    }
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.bump();
                    let s = self.lex_escaped_string();
                    self.push(line, TokKind::Str(s));
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.bump();
                    self.lex_char_literal_body();
                    self.push(line, TokKind::CharLit);
                }
                'b' if self.peek(1) == Some('r')
                    && matches!(self.peek(2), Some('"') | Some('#')) =>
                {
                    self.bump();
                    self.bump();
                    let mut hashes = 0;
                    while self.peek(hashes) == Some('#') {
                        hashes += 1;
                    }
                    self.bump(); // the quote (or first # consumed below)
                    for _ in 0..hashes {
                        self.bump();
                    }
                    let s = self.lex_raw_string(hashes);
                    self.push(line, TokKind::Str(s));
                }
                '\'' => {
                    self.bump();
                    match self.peek(0) {
                        Some('\\') => {
                            self.lex_char_literal_body();
                            self.push(line, TokKind::CharLit);
                        }
                        Some(n) if is_ident_start(n) => {
                            // Lifetime unless a closing quote follows the
                            // identifier run ('a' vs 'a).
                            let mut k = 0;
                            while self.peek(k).map(is_ident_continue).unwrap_or(false) {
                                k += 1;
                            }
                            if self.peek(k) == Some('\'') {
                                self.lex_char_literal_body();
                                self.push(line, TokKind::CharLit);
                            } else {
                                for _ in 0..k {
                                    self.bump();
                                }
                                self.push(line, TokKind::Lifetime);
                            }
                        }
                        Some(_) => {
                            self.lex_char_literal_body();
                            self.push(line, TokKind::CharLit);
                        }
                        None => {}
                    }
                }
                _ if is_ident_start(c) => self.lex_ident_at(line),
                _ if c.is_ascii_digit() => {
                    // Digit run with alphanumeric suffix (0xFF, 1_000u64);
                    // the `.` of a float lexes as Punct, which no rule
                    // cares about.
                    while let Some(n) = self.peek(0) {
                        if is_ident_continue(n) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(line, TokKind::Num);
                }
                _ => {
                    self.bump();
                    self.push(line, TokKind::Punct(c));
                }
            }
        }
        self.out
    }
}

/// Lexes one source file.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        token_on_line: false,
        out: Lexed::default(),
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn identifiers_inside_strings_are_not_tokens() {
        let src = r##"let x = "HashMap::iter() Instant::now()"; let y = r#"thread_rng"#;"##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        let src = "/* outer /* inner HashMap */ still comment */ fn main() {}";
        assert_eq!(idents(src), vec!["fn", "main"]);
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let src = "let c = 'a'; fn f<'a>(x: &'a str) -> char { '\\n' }";
        let lexed = lex(src);
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::CharLit)
            .count();
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(chars, 2, "'a' and '\\n'");
        assert_eq!(lifetimes, 2, "<'a> and &'a");
    }

    #[test]
    fn raw_and_byte_strings_consume_their_bodies() {
        let src = r###"let a = r#"un"closed ""#; let b = b"bytes"; let c = br##"raw"##;"###;
        assert_eq!(idents(src), vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn comments_record_line_and_own_line_flag() {
        let src = "let x = 1; // trailing\n// own line\nlet y = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(!lexed.comments[0].own_line);
        assert_eq!(lexed.comments[1].line, 2);
        assert!(lexed.comments[1].own_line);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"line\none\";\nlet b = 1;\n";
        let lexed = lex(src);
        let b_tok = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident("b".into()))
            .unwrap();
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn raw_identifier_lexes_as_ident() {
        assert_eq!(idents("let r#match = 1;"), vec!["let", "match"]);
    }

    // --- regression pins for the structural pass ------------------------
    // The scope tree is built from brace Puncts, so a brace leaking out
    // of a char literal or string would silently skew every scope-aware
    // rule. These pin the exact cases that trip grep-style lexers.

    #[test]
    fn hash_and_brace_char_literals_do_not_leak_puncts() {
        let src = "let a = '#'; let b = '{'; let c = '}'; let d = '|'; let e = b'{';";
        let lexed = lex(src);
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::CharLit)
            .count();
        assert_eq!(chars, 5);
        assert!(
            !lexed.tokens.iter().any(|t| matches!(
                t.kind,
                TokKind::Punct('{')
                    | TokKind::Punct('}')
                    | TokKind::Punct('#')
                    | TokKind::Punct('|')
            )),
            "char-literal bodies must not surface as punctuation: {:?}",
            lexed.tokens
        );
    }

    #[test]
    fn wildcard_lifetime_and_loop_labels_are_lifetimes_not_chars() {
        let src = "fn f(x: &'_ str) { 'outer: loop { break 'outer; } }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3, "{:?}", lexed.tokens);
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokKind::CharLit));
        // The loop braces still balance (2 opens, 2 closes).
        let opens = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct('{'))
            .count();
        let closes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct('}'))
            .count();
        assert_eq!((opens, closes), (2, 2));
    }

    #[test]
    fn quotes_and_hashes_in_doc_comments_do_not_derail() {
        let src = "/// doc with '#' and a stray \" quote and a { brace\nfn f() {}\n";
        let lexed = lex(src);
        let ids = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect::<Vec<_>>();
        assert_eq!(ids, vec!["fn", "f"]);
        assert_eq!(lexed.comments.len(), 1);
    }

    #[test]
    fn multi_hash_raw_strings_with_embedded_terminator_lookalikes() {
        let src = r####"let s = r##"inner "# quote and { brace"##; let t = 1;"####;
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
        let lexed = lex(src);
        let body = lexed
            .tokens
            .iter()
            .find_map(|t| match &t.kind {
                TokKind::Str(s) => Some(s.clone()),
                _ => None,
            })
            .expect("one string token");
        assert_eq!(body, "inner \"# quote and { brace");
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokKind::Punct('{')));
    }
}
