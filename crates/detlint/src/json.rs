//! A minimal JSON reader — just enough to load the incremental cache and
//! to validate detlint's own SARIF output in tests. This crate is
//! dependency-free by design (it lints the workspace that builds it), so
//! it cannot lean on serde.
//!
//! Supports the full JSON value grammar with `\uXXXX` escapes; numbers
//! are held as `f64`, which is exact for every line number and count
//! detlint writes.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup; `Value::Null` when absent or not an object.
    pub fn get(&self, key: &str) -> &Value {
        match self {
            Value::Obj(m) => m.get(key).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }

    /// Array element lookup; `Value::Null` when out of range.
    pub fn at(&self, idx: usize) -> &Value {
        match self {
            Value::Arr(v) => v.get(idx).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Value, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut p = Parser { chars, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.chars.len() {
        return Err(format!("trailing content at offset {}", p.i));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn bump(&mut self) -> Result<char, String> {
        let c = self.peek().ok_or("unexpected end of input")?;
        self.i += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        let got = self.bump()?;
        if got != c {
            return Err(format!("expected `{c}`, got `{got}` at offset {}", self.i));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek().ok_or("unexpected end of input")? {
            '{' => self.object(),
            '[' => self.array(),
            '"' => Ok(Value::Str(self.string()?)),
            't' => self.literal("true", Value::Bool(true)),
            'f' => self.literal("false", Value::Bool(false)),
            'n' => self.literal("null", Value::Null),
            '-' | '0'..='9' => self.number(),
            c => Err(format!("unexpected `{c}` at offset {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.i += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                '}' => return Ok(Value::Obj(map)),
                c => return Err(format!("expected `,` or `}}`, got `{c}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                ']' => return Ok(Value::Arr(items)),
                c => return Err(format!("expected `,` or `]`, got `{c}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(s),
                '\\' => match self.bump()? {
                    '"' => s.push('"'),
                    '\\' => s.push('\\'),
                    '/' => s.push('/'),
                    'b' => s.push('\u{8}'),
                    'f' => s.push('\u{c}'),
                    'n' => s.push('\n'),
                    'r' => s.push('\r'),
                    't' => s.push('\t'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            code = code * 16
                                + d.to_digit(16)
                                    .ok_or_else(|| format!("bad \\u digit `{d}`"))?;
                        }
                        // Surrogate pairs are never produced by detlint's
                        // writers; map lone surrogates to U+FFFD.
                        s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    c => return Err(format!("bad escape `\\{c}`")),
                },
                c => s.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some('-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some('0'..='9' | '.' | 'e' | 'E' | '+' | '-')) {
            self.i += 1;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}}"#).unwrap();
        assert_eq!(v.get("a").at(0).as_u64(), Some(1));
        assert_eq!(v.get("a").at(1), &Value::Num(2.5));
        assert_eq!(v.get("b").get("c").as_str(), Some("x\ny"));
        assert_eq!(v.get("b").get("d").as_bool(), Some(true));
        assert_eq!(v.get("b").get("e"), &Value::Null);
        assert_eq!(v.get("missing"), &Value::Null);
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""§ —""#).unwrap();
        assert_eq!(v.as_str(), Some("§ —"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn roundtrips_render_json() {
        let findings = vec![crate::rules::Finding {
            rule: "wall-clock",
            path: "a\"b.rs".to_string(),
            line: 3,
            message: "uses `Instant::now()` — §8".to_string(),
        }];
        let v = parse(&crate::render_json(&findings)).unwrap();
        assert_eq!(v.at(0).get("path").as_str(), Some("a\"b.rs"));
        assert_eq!(v.at(0).get("line").as_u64(), Some(3));
    }
}
