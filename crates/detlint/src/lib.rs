#![forbid(unsafe_code)]
//! # livescope-detlint — determinism & safety static analysis
//!
//! The telemetry layer (DESIGN.md §8) promises byte-reproducible JSONL
//! traces per `(config, seed)`. This crate *enforces* the constructs
//! that promise depends on, as a workspace lint wired into `just ci` /
//! `scripts/ci.sh`:
//!
//! * [`lexer`] — a small Rust lexer (nested block comments, raw/byte
//!   strings, char literals vs lifetimes) so rules match real tokens,
//!   never text inside a string;
//! * [`rules`] — the rules: `hash-iter`, `wall-clock`, `ambient-rng`,
//!   `unordered-float-sum`, `unsafe-code` (token ban *and*
//!   `#![forbid(unsafe_code)]` required on every crate root), and
//!   `todo-panic`, plus the `missing-reason` meta-rule;
//! * [`config`] — the `detlint.toml` path-scoped allowlist
//!   (`vendor/`, bench binaries, the fixture corpus);
//! * per-line suppression: `// detlint::allow(<rule>) — <reason>`,
//!   where the reason is mandatory.
//!
//! The `detlint` binary drives [`scan`] and exits nonzero on findings;
//! `detlint --explain <rule>` documents each rule.

pub mod config;
pub mod lexer;
pub mod rules;

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

pub use config::Config;
pub use rules::{rule_info, Finding, RULES};

/// Directories never scanned, wherever they appear.
const SKIP_DIRS: &[&str] = &["target", ".git", "results"];

/// Result of a scan.
#[derive(Clone, Debug, Default)]
pub struct ScanOutcome {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

/// A suppression directive parsed from a `// detlint::allow(...)` comment.
struct Suppression {
    /// The source line the directive covers.
    target_line: u32,
    /// The line the directive itself sits on.
    directive_line: u32,
    rules: Vec<String>,
    /// `None` when well-formed; `Some(problem)` otherwise.
    problem: Option<String>,
}

/// Scans `.rs` files and returns findings.
///
/// With `paths = None` the whole tree under `root` is walked and the
/// config allowlist applies. With explicit `paths` (files or
/// directories, as given on the CLI), the allowlist is bypassed — that
/// is how the fixture corpus is linted deliberately.
pub fn scan(
    root: &Path,
    config: &Config,
    paths: Option<&[PathBuf]>,
) -> Result<ScanOutcome, String> {
    let explicit = paths.is_some();
    let mut files = Vec::new();
    match paths {
        None => collect_rs(root, &mut files)?,
        Some(list) => {
            for p in list {
                let p = if p.is_absolute() {
                    p.clone()
                } else {
                    root.join(p)
                };
                if p.is_dir() {
                    collect_rs(&p, &mut files)?;
                } else {
                    files.push(p);
                }
            }
        }
    }
    files.sort();
    files.dedup();

    let forbid_roots = crate_roots(root)?;

    let mut outcome = ScanOutcome::default();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        outcome.files_scanned += 1;
        let lexed = lexer::lex(&text);
        let requires_forbid = forbid_roots.contains(file);
        let mut findings = rules::check_file(&rules::FileContext {
            path: &rel,
            tokens: &lexed.tokens,
            requires_forbid,
        });

        // Apply per-line suppressions and report malformed ones.
        let suppressions = parse_suppressions(&lexed);
        findings.retain(|f| {
            !suppressions
                .iter()
                .any(|s| s.target_line == f.line && s.rules.iter().any(|r| r == "*" || r == f.rule))
        });
        for s in &suppressions {
            if let Some(problem) = &s.problem {
                findings.push(Finding {
                    rule: "missing-reason",
                    path: rel.clone(),
                    line: s.directive_line,
                    message: problem.clone(),
                });
            }
        }
        findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));

        // Path-scoped allowlist (workspace scans only).
        if !explicit {
            findings.retain(|f| !config.allows(&f.path, f.rule));
        }
        outcome.findings.extend(findings);
    }
    Ok(outcome)
}

/// Recursively collects `.rs` files, skipping build/VCS/result dirs.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut children: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        children.push(entry.path());
    }
    children.sort();
    for path in children {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Every crate-root file under `root`: the targets Cargo auto-discovers
/// (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`, `benches/*.rs`,
/// `examples/*.rs`, `tests/*.rs`) plus every explicit `path = "….rs"`
/// in a `[package]` Cargo.toml. These files must carry
/// `#![forbid(unsafe_code)]`.
fn crate_roots(root: &Path) -> Result<BTreeSet<PathBuf>, String> {
    let mut manifests = Vec::new();
    collect_manifests(root, &mut manifests)?;
    let mut roots = BTreeSet::new();
    for manifest in manifests {
        let text =
            fs::read_to_string(&manifest).map_err(|e| format!("{}: {e}", manifest.display()))?;
        if !text.contains("[package]") {
            continue; // pure workspace manifest
        }
        let dir = manifest.parent().expect("manifest has a parent");
        for fixed in ["src/lib.rs", "src/main.rs"] {
            let p = dir.join(fixed);
            if p.is_file() {
                roots.insert(p);
            }
        }
        for glob_dir in ["src/bin", "benches", "examples", "tests"] {
            let d = dir.join(glob_dir);
            if let Ok(entries) = fs::read_dir(&d) {
                for entry in entries.flatten() {
                    let p = entry.path();
                    if p.extension().is_some_and(|e| e == "rs") {
                        roots.insert(p);
                    }
                }
            }
        }
        for line in text.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("path") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    let value = value.trim();
                    if let Some(p) = value.strip_prefix('"').and_then(|v| v.split('"').next()) {
                        if p.ends_with(".rs") {
                            let p = dir.join(p);
                            if p.is_file() {
                                roots.insert(p);
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(roots)
}

fn collect_manifests(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_manifests(&path, out)?;
        } else if name == "Cargo.toml" {
            out.push(path);
        }
    }
    Ok(())
}

/// Parses every `detlint::allow(...)` directive out of a file's comments.
fn parse_suppressions(lexed: &lexer::Lexed) -> Vec<Suppression> {
    const MARKER: &str = "detlint::allow(";
    let mut out = Vec::new();
    for comment in &lexed.comments {
        // Doc comments (`///`, `//!`, `/**`) are documentation — they may
        // *mention* the directive syntax without being directives.
        if matches!(
            comment.text.chars().next(),
            Some('/') | Some('!') | Some('*')
        ) {
            continue;
        }
        let Some(at) = comment.text.find(MARKER) else {
            continue;
        };
        let after = &comment.text[at + MARKER.len()..];
        let Some(close) = after.find(')') else {
            out.push(Suppression {
                target_line: comment.line,
                directive_line: comment.line,
                rules: Vec::new(),
                problem: Some("unclosed `detlint::allow(` directive".to_string()),
            });
            continue;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let mut problem = None;
        if rules.is_empty() {
            problem = Some("`detlint::allow()` names no rule".to_string());
        } else if let Some(bad) = rules.iter().find(|r| *r != "*" && rule_info(r).is_none()) {
            problem = Some(format!("`detlint::allow` names unknown rule `{bad}`"));
        } else {
            // The reason is mandatory: `) — why this is sound`.
            let reason = after[close + 1..]
                .trim_start()
                .trim_start_matches(['—', '–', '-', ':'])
                .trim();
            if reason.is_empty() {
                problem = Some(
                    "suppression needs a reason: `// detlint::allow(<rule>) — <reason>`"
                        .to_string(),
                );
            }
        }
        // An own-line directive covers the next line with code on it; a
        // trailing directive covers its own line.
        let target_line = if comment.own_line {
            lexed
                .tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > comment.line)
                .unwrap_or(comment.line + 1)
        } else {
            comment.line
        };
        out.push(Suppression {
            target_line,
            directive_line: comment.line,
            rules,
            problem,
        });
    }
    out
}

/// Renders findings as text, one per line (`path:line: [rule] message`).
pub fn render_text(findings: &[Finding]) -> String {
    let mut s = String::new();
    for f in findings {
        s.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.path, f.line, f.rule, f.message
        ));
    }
    s
}

/// Renders findings as a JSON array (machine-readable `--format json`).
pub fn render_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            esc(f.rule),
            esc(&f.path),
            f.line,
            esc(&f.message)
        ));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan_source(src: &str) -> Vec<Finding> {
        // Drive the suppression path without touching the filesystem.
        let lexed = lex(src);
        let mut findings = rules::check_file(&rules::FileContext {
            path: "src/x.rs",
            tokens: &lexed.tokens,
            requires_forbid: false,
        });
        let sup = parse_suppressions(&lexed);
        findings.retain(|f| {
            !sup.iter()
                .any(|s| s.target_line == f.line && s.rules.iter().any(|r| r == "*" || r == f.rule))
        });
        for s in &sup {
            if let Some(p) = &s.problem {
                findings.push(Finding {
                    rule: "missing-reason",
                    path: "src/x.rs".to_string(),
                    line: s.directive_line,
                    message: p.clone(),
                });
            }
        }
        findings
    }

    #[test]
    fn trailing_suppression_with_reason_silences_the_line() {
        let src =
            "fn f() { let t = Instant::now(); } // detlint::allow(wall-clock) — CLI timing only\n";
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn own_line_suppression_covers_the_next_code_line() {
        let src = "// detlint::allow(ambient-rng) — interactive demo, reproducibility waived\n\
                   fn f() { let r = thread_rng(); }\n";
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_reported_and_counted_once() {
        let src = "fn f() { let t = Instant::now(); } // detlint::allow(wall-clock)\n";
        let findings = scan_source(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "missing-reason");
    }

    #[test]
    fn suppression_for_another_rule_does_not_silence() {
        let src = "fn f() { let t = Instant::now(); } // detlint::allow(hash-iter) — wrong rule\n";
        let findings = scan_source(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "wall-clock");
    }

    #[test]
    fn unknown_rule_name_in_directive_is_reported() {
        let src = "fn f() {} // detlint::allow(wall-clok) — typo\n";
        let findings = scan_source(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "missing-reason");
        assert!(findings[0].message.contains("wall-clok"));
    }

    #[test]
    fn json_rendering_escapes_content() {
        let findings = vec![Finding {
            rule: "wall-clock",
            path: "a\"b.rs".to_string(),
            line: 3,
            message: "uses `Instant::now()`".to_string(),
        }];
        let json = render_json(&findings);
        assert!(json.contains("\\\"b.rs"));
        assert!(json.starts_with('[') && json.ends_with(']'));
    }
}
