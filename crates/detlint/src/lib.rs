#![forbid(unsafe_code)]
//! # livescope-detlint — determinism & safety static analysis
//!
//! The telemetry layer (DESIGN.md §8) promises byte-reproducible JSONL
//! traces per `(config, seed)`. This crate *enforces* the constructs
//! that promise depends on, as a workspace lint wired into `just ci` /
//! `scripts/ci.sh`. Two phases:
//!
//! * [`lexer`] — a small Rust lexer (nested block comments, raw/byte
//!   strings, char literals vs lifetimes) so rules match real tokens,
//!   never text inside a string;
//! * [`rules`] — the token-stream rules: `hash-iter`, `wall-clock`,
//!   `ambient-rng`, `unordered-float-sum`, `unsafe-code` (token ban
//!   *and* `#![forbid(unsafe_code)]` required on every crate root), and
//!   `todo-panic`, plus the `missing-reason` meta-rule;
//! * [`scope`] + [`structural`] — a brace-matched scope tree (items,
//!   impls, fns, closures — no full grammar) feeding the
//!   merge-contract rules: `shared-mutable-state`, `direct-trace-emit`,
//!   `section-discipline`, `unordered-float-merge`, and `span-balance`
//!   (per-site registry checks here; the cross-file open/close pairing
//!   is assembled in [`scan_with`] from every file's span inventory);
//! * [`config`] — the `detlint.toml` path-scoped allowlist
//!   (`vendor/`, bench binaries, the fixture corpus), audited for
//!   stale entries (`stale-allowlist`) on workspace scans;
//! * [`cache`] — a per-file content-hash cache so unchanged files skip
//!   re-analysis; [`sarif`] — SARIF 2.1.0 output for CI annotations;
//! * per-line suppression: `// detlint::allow(<rule>) — <reason>`,
//!   where the reason is mandatory.
//!
//! The `detlint` binary drives [`scan`] and exits nonzero on findings;
//! `detlint --explain <rule>` documents each rule.

pub mod cache;
pub mod config;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod scope;
pub mod structural;

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

pub use config::{AllowEntry, Config};
pub use rules::{rule_info, Finding, RULES};
pub use sarif::render_sarif;

/// Directories never scanned, wherever they appear.
const SKIP_DIRS: &[&str] = &["target", ".git", "results"];

/// Result of a scan.
#[derive(Clone, Debug, Default)]
pub struct ScanOutcome {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    /// Files replayed from the incremental cache instead of re-analyzed.
    pub cache_hits: usize,
}

/// Knobs for [`scan_with`].
#[derive(Clone, Debug)]
pub struct ScanOptions {
    /// Where to load/store the incremental cache. `None` disables it.
    /// Only honored for workspace scans (explicit paths always run hot —
    /// they bypass the allowlist, so their results must not be shared
    /// with workspace runs either).
    pub cache_path: Option<PathBuf>,
    /// Audit `detlint.toml` for stale entries (workspace scans only).
    pub audit_allowlist: bool,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            cache_path: None,
            audit_allowlist: true,
        }
    }
}

/// A suppression directive parsed from a `// detlint::allow(...)` comment.
struct Suppression {
    /// The source line the directive covers.
    target_line: u32,
    /// The line the directive itself sits on.
    directive_line: u32,
    rules: Vec<String>,
    /// `None` when well-formed; `Some(problem)` otherwise.
    problem: Option<String>,
}

/// Scans `.rs` files and returns findings, with default options (no
/// cache, allowlist audit on).
///
/// With `paths = None` the whole tree under `root` is walked and the
/// config allowlist applies. With explicit `paths` (files or
/// directories, as given on the CLI), the allowlist is bypassed — that
/// is how the fixture corpus is linted deliberately.
pub fn scan(
    root: &Path,
    config: &Config,
    paths: Option<&[PathBuf]>,
) -> Result<ScanOutcome, String> {
    scan_with(root, config, paths, &ScanOptions::default())
}

/// [`scan`] with explicit [`ScanOptions`].
pub fn scan_with(
    root: &Path,
    config: &Config,
    paths: Option<&[PathBuf]>,
    options: &ScanOptions,
) -> Result<ScanOutcome, String> {
    let explicit = paths.is_some();
    let mut files = Vec::new();
    match paths {
        None => collect_rs(root, &mut files)?,
        Some(list) => {
            for p in list {
                let p = if p.is_absolute() {
                    p.clone()
                } else {
                    root.join(p)
                };
                if p.is_dir() {
                    collect_rs(&p, &mut files)?;
                } else {
                    files.push(p);
                }
            }
        }
    }
    files.sort();
    files.dedup();

    let forbid_roots = crate_roots(root)?;
    let cache_path = if explicit {
        None
    } else {
        options.cache_path.as_deref()
    };
    let mut file_cache = cache_path.map(cache::Cache::load);

    let mut outcome = ScanOutcome::default();
    let mut span_sites: Vec<(String, structural::SpanSite)> = Vec::new();
    let mut scanned_rels: Vec<String> = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        outcome.files_scanned += 1;
        let requires_forbid = forbid_roots.contains(file);
        let hash = cache::content_hash(&text);
        let record = match file_cache
            .as_ref()
            .and_then(|c| c.lookup(&rel, hash, requires_forbid))
        {
            Some(hit) => {
                outcome.cache_hits += 1;
                hit.clone()
            }
            None => {
                let record = analyze_file(&rel, &text, requires_forbid);
                if let Some(c) = file_cache.as_mut() {
                    c.insert(&rel, hash, record.clone());
                }
                record
            }
        };
        span_sites.extend(record.span_sites.into_iter().map(|s| (rel.clone(), s)));
        outcome.findings.extend(record.findings);
        scanned_rels.push(rel);
    }

    // Cross-file half of span-balance: every kind opened somewhere in the
    // scan set must close somewhere, and vice versa.
    outcome.findings.extend(span_balance_findings(&span_sites));

    // Path-scoped allowlist (workspace scans only), with per-entry credit
    // so the audit can spot entries that suppress nothing.
    if !explicit {
        let mut credited: BTreeSet<(usize, usize)> = BTreeSet::new();
        outcome.findings.retain(|f| {
            let path = f.path.replace('\\', "/");
            let mut dropped = false;
            for (ei, entry) in config.allow.iter().enumerate() {
                if !path.starts_with(entry.prefix.as_str()) {
                    continue;
                }
                for (ri, rule) in entry.rules.iter().enumerate() {
                    if rule == "*" || rule == f.rule {
                        credited.insert((ei, ri));
                        dropped = true;
                    }
                }
            }
            !dropped
        });
        if options.audit_allowlist {
            for (ei, entry) in config.allow.iter().enumerate() {
                let prefix_hit = scanned_rels
                    .iter()
                    .any(|r| r.starts_with(entry.prefix.as_str()));
                if !prefix_hit {
                    outcome.findings.push(Finding {
                        rule: "stale-allowlist",
                        path: "detlint.toml".to_string(),
                        line: entry.line,
                        message: format!(
                            "allowlist entry `\"{}\"` matches no scanned file — delete it",
                            entry.prefix
                        ),
                    });
                    continue;
                }
                for (ri, rule) in entry.rules.iter().enumerate() {
                    if !credited.contains(&(ei, ri)) {
                        outcome.findings.push(Finding {
                            rule: "stale-allowlist",
                            path: "detlint.toml".to_string(),
                            line: entry.line,
                            message: format!(
                                "allowlist entry `\"{}\" = \"{rule}\"` suppresses zero findings — delete it (re-add with a reason if the hazard returns)",
                                entry.prefix
                            ),
                        });
                    }
                }
            }
        }
    }
    outcome
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    if let (Some(path), Some(mut c)) = (cache_path, file_cache) {
        c.retain_paths(&|p: &str| scanned_rels.iter().any(|r| r == p));
        c.save(path);
    }
    Ok(outcome)
}

/// Runs the full per-file pipeline: lex → token rules → scope tree →
/// structural rules → suppression directives. Returns the cacheable
/// per-file record (findings are post-suppression, pre-allowlist).
pub fn analyze_file(path: &str, text: &str, requires_forbid: bool) -> cache::FileRecord {
    let lexed = lexer::lex(text);
    let mut findings = rules::check_file(&rules::FileContext {
        path,
        tokens: &lexed.tokens,
        requires_forbid,
    });
    let tree = scope::ScopeTree::build(&lexed.tokens);
    let ranges = rules::guarded_ranges(&lexed.tokens);
    let structural_out = structural::check_file(&structural::StructuralContext {
        path,
        tokens: &lexed.tokens,
        comments: &lexed.comments,
        tree: &tree,
        ranges: &ranges,
    });
    // Where the structural pass produced the sharper merge finding, drop
    // the token-level hash findings on the same line so one hazard isn't
    // double-reported.
    let merge_lines: BTreeSet<u32> = structural_out
        .findings
        .iter()
        .filter(|f| f.rule == "unordered-float-merge")
        .map(|f| f.line)
        .collect();
    findings.retain(|f| {
        !(matches!(f.rule, "hash-iter" | "unordered-float-sum") && merge_lines.contains(&f.line))
    });
    findings.extend(structural_out.findings);

    // Apply per-line suppressions and report malformed ones.
    let suppressions = parse_suppressions(&lexed);
    findings.retain(|f| {
        !suppressions
            .iter()
            .any(|s| s.target_line == f.line && s.rules.iter().any(|r| r == "*" || r == f.rule))
    });
    for s in &suppressions {
        if let Some(problem) = &s.problem {
            findings.push(Finding {
                rule: "missing-reason",
                path: path.to_string(),
                line: s.directive_line,
                message: problem.clone(),
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    cache::FileRecord {
        findings,
        span_sites: structural_out.span_sites,
        requires_forbid,
    }
}

/// The cross-file span-balance check over every file's emission
/// inventory: a kind with opens but no closes (or closes but no opens)
/// can never reconstruct into a span.
fn span_balance_findings(sites: &[(String, structural::SpanSite)]) -> Vec<Finding> {
    let kinds: BTreeSet<&str> = sites.iter().map(|(_, s)| s.kind.as_str()).collect();
    let mut out = Vec::new();
    for kind in kinds {
        let opens: Vec<&(String, structural::SpanSite)> = sites
            .iter()
            .filter(|(_, s)| s.kind == kind && s.is_open)
            .collect();
        let closes: Vec<&(String, structural::SpanSite)> = sites
            .iter()
            .filter(|(_, s)| s.kind == kind && !s.is_open)
            .collect();
        // Files are visited in sorted order and sites in token order, so
        // `first()` is the (path, line)-least site — a stable anchor.
        if closes.is_empty() {
            let (path, site) = opens.first().expect("kind came from some site");
            out.push(Finding {
                rule: "span-balance",
                path: path.clone(),
                line: site.line,
                message: format!(
                    "`SpanKind::{kind}` is opened here (and at {} other site(s) in the scan set) but closed nowhere — the span can never reconstruct (DESIGN.md §11)",
                    opens.len() - 1
                ),
            });
        } else if opens.is_empty() {
            let (path, site) = closes.first().expect("kind came from some site");
            out.push(Finding {
                rule: "span-balance",
                path: path.clone(),
                line: site.line,
                message: format!(
                    "`SpanKind::{kind}` is closed here (and at {} other site(s) in the scan set) but opened nowhere — the close can never match an open (DESIGN.md §11)",
                    closes.len() - 1
                ),
            });
        }
    }
    out
}

/// Recursively collects `.rs` files, skipping build/VCS/result dirs.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut children: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        children.push(entry.path());
    }
    children.sort();
    for path in children {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Every crate-root file under `root`: the targets Cargo auto-discovers
/// (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`, `benches/*.rs`,
/// `examples/*.rs`, `tests/*.rs`) plus every explicit `path = "….rs"`
/// in a `[package]` Cargo.toml. These files must carry
/// `#![forbid(unsafe_code)]`.
fn crate_roots(root: &Path) -> Result<BTreeSet<PathBuf>, String> {
    let mut manifests = Vec::new();
    collect_manifests(root, &mut manifests)?;
    let mut roots = BTreeSet::new();
    for manifest in manifests {
        let text =
            fs::read_to_string(&manifest).map_err(|e| format!("{}: {e}", manifest.display()))?;
        if !text.contains("[package]") {
            continue; // pure workspace manifest
        }
        let dir = manifest.parent().expect("manifest has a parent");
        for fixed in ["src/lib.rs", "src/main.rs"] {
            let p = dir.join(fixed);
            if p.is_file() {
                roots.insert(p);
            }
        }
        for glob_dir in ["src/bin", "benches", "examples", "tests"] {
            let d = dir.join(glob_dir);
            if let Ok(entries) = fs::read_dir(&d) {
                for entry in entries.flatten() {
                    let p = entry.path();
                    if p.extension().is_some_and(|e| e == "rs") {
                        roots.insert(p);
                    }
                }
            }
        }
        for line in text.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("path") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    let value = value.trim();
                    if let Some(p) = value.strip_prefix('"').and_then(|v| v.split('"').next()) {
                        if p.ends_with(".rs") {
                            let p = dir.join(p);
                            if p.is_file() {
                                roots.insert(p);
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(roots)
}

fn collect_manifests(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_manifests(&path, out)?;
        } else if name == "Cargo.toml" {
            out.push(path);
        }
    }
    Ok(())
}

/// Parses every `detlint::allow(...)` directive out of a file's comments.
fn parse_suppressions(lexed: &lexer::Lexed) -> Vec<Suppression> {
    const MARKER: &str = "detlint::allow(";
    let mut out = Vec::new();
    for comment in &lexed.comments {
        // Doc comments (`///`, `//!`, `/**`) are documentation — they may
        // *mention* the directive syntax without being directives.
        if matches!(
            comment.text.chars().next(),
            Some('/') | Some('!') | Some('*')
        ) {
            continue;
        }
        let Some(at) = comment.text.find(MARKER) else {
            continue;
        };
        let after = &comment.text[at + MARKER.len()..];
        let Some(close) = after.find(')') else {
            out.push(Suppression {
                target_line: comment.line,
                directive_line: comment.line,
                rules: Vec::new(),
                problem: Some("unclosed `detlint::allow(` directive".to_string()),
            });
            continue;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let mut problem = None;
        if rules.is_empty() {
            problem = Some("`detlint::allow()` names no rule".to_string());
        } else if let Some(bad) = rules.iter().find(|r| *r != "*" && rule_info(r).is_none()) {
            problem = Some(format!("`detlint::allow` names unknown rule `{bad}`"));
        } else {
            // The reason is mandatory: `) — why this is sound`.
            let reason = after[close + 1..]
                .trim_start()
                .trim_start_matches(['—', '–', '-', ':'])
                .trim();
            if reason.is_empty() {
                problem = Some(
                    "suppression needs a reason: `// detlint::allow(<rule>) — <reason>`"
                        .to_string(),
                );
            }
        }
        // An own-line directive covers the next line with code on it; a
        // trailing directive covers its own line.
        let target_line = if comment.own_line {
            lexed
                .tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > comment.line)
                .unwrap_or(comment.line + 1)
        } else {
            comment.line
        };
        out.push(Suppression {
            target_line,
            directive_line: comment.line,
            rules,
            problem,
        });
    }
    out
}

/// Renders findings as text, one per line (`path:line: [rule] message`).
pub fn render_text(findings: &[Finding]) -> String {
    let mut s = String::new();
    for f in findings {
        s.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.path, f.line, f.rule, f.message
        ));
    }
    s
}

/// Renders findings as a JSON array (machine-readable `--format json`).
pub fn render_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            esc(f.rule),
            esc(&f.path),
            f.line,
            esc(&f.message)
        ));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_source(src: &str) -> Vec<Finding> {
        // Drive the per-file pipeline without touching the filesystem.
        analyze_file("src/x.rs", src, false).findings
    }

    #[test]
    fn trailing_suppression_with_reason_silences_the_line() {
        let src =
            "fn f() { let t = Instant::now(); } // detlint::allow(wall-clock) — CLI timing only\n";
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn own_line_suppression_covers_the_next_code_line() {
        let src = "// detlint::allow(ambient-rng) — interactive demo, reproducibility waived\n\
                   fn f() { let r = thread_rng(); }\n";
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_reported_and_counted_once() {
        let src = "fn f() { let t = Instant::now(); } // detlint::allow(wall-clock)\n";
        let findings = scan_source(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "missing-reason");
    }

    #[test]
    fn suppression_for_another_rule_does_not_silence() {
        let src = "fn f() { let t = Instant::now(); } // detlint::allow(hash-iter) — wrong rule\n";
        let findings = scan_source(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "wall-clock");
    }

    #[test]
    fn unknown_rule_name_in_directive_is_reported() {
        let src = "fn f() {} // detlint::allow(wall-clok) — typo\n";
        let findings = scan_source(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "missing-reason");
        assert!(findings[0].message.contains("wall-clok"));
    }

    #[test]
    fn json_rendering_escapes_content() {
        let findings = vec![Finding {
            rule: "wall-clock",
            path: "a\"b.rs".to_string(),
            line: 3,
            message: "uses `Instant::now()`".to_string(),
        }];
        let json = render_json(&findings);
        assert!(json.contains("\\\"b.rs"));
        assert!(json.starts_with('[') && json.ends_with(']'));
    }

    #[test]
    fn structural_merge_finding_supersedes_token_findings_on_its_line() {
        let src = "struct ObsReport { w: HashMap<u64, f64>, t: f64 }\n\
                   impl ObsReport { fn merge(&mut self, o: &Self) {\n\
                   for v in o.w.values() { self.t += v; }\n} }\n";
        let findings = scan_source(src);
        let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["unordered-float-merge"], "{findings:?}");
    }

    #[test]
    fn cross_file_span_balance_pairs_across_files() {
        let opener = analyze_file(
            "src/a.rs",
            "fn f() { t.emit(n, TraceEvent::SpanOpen { id: overlay_frame_span(a, s), parent: 0, kind: SpanKind::OverlayFrame, broadcast: a, subject: s, site: 0 }); }",
            false,
        );
        let closer = analyze_file(
            "src/b.rs",
            "fn g() { t.emit(n, TraceEvent::SpanClose { id: overlay_frame_span(a, s), kind: SpanKind::OverlayFrame }); }",
            false,
        );
        assert!(opener.findings.is_empty() && closer.findings.is_empty());
        let balanced: Vec<(String, structural::SpanSite)> = opener
            .span_sites
            .iter()
            .cloned()
            .map(|s| ("src/a.rs".to_string(), s))
            .chain(
                closer
                    .span_sites
                    .iter()
                    .cloned()
                    .map(|s| ("src/b.rs".to_string(), s)),
            )
            .collect();
        assert!(span_balance_findings(&balanced).is_empty());

        let unbalanced: Vec<(String, structural::SpanSite)> = opener
            .span_sites
            .into_iter()
            .map(|s| ("src/a.rs".to_string(), s))
            .collect();
        let findings = span_balance_findings(&unbalanced);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "span-balance");
        assert_eq!(findings[0].path, "src/a.rs");
        assert!(findings[0].message.contains("closed nowhere"));
    }
}
