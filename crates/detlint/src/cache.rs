//! Per-file incremental cache for workspace scans.
//!
//! The full-workspace run lexes and analyzes ~180 files on every `just
//! ci`; almost all of them are unchanged between runs. The cache keys
//! each file by an FNV-1a content hash and stores the *per-file* analysis
//! output (findings after `detlint::allow` suppression but before the
//! allowlist, plus the span-site inventory), so an unchanged file is a
//! hash + lookup instead of a lex + two rule passes.
//!
//! What is deliberately **not** cached: anything cross-file or
//! config-dependent. The span-balance inventory merge, the `detlint.toml`
//! allowlist, and the allowlist audit are recomputed from the cached
//! per-file records on every run, so caching can never change a scan's
//! outcome — only skip re-deriving per-file facts. The whole cache is
//! dropped when the rule set changes (the version tag hashes every rule's
//! name and explain text) and `--no-cache` bypasses it entirely.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::json::{self, Value};
use crate::rules::{rule_info, Finding, RULES};
use crate::structural::SpanSite;

/// FNV-1a 64-bit content hash.
pub fn content_hash(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cache tag: changes whenever the rule set (names or semantics-bearing
/// docs) or the crate version changes, invalidating every entry at once.
pub fn cache_version() -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |s: &str| {
        for b in s.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for rule in RULES {
        mix(rule.name);
        mix(rule.summary);
        mix(rule.explain);
    }
    format!("detlint-cache-v1:{}:{:016x}", env!("CARGO_PKG_VERSION"), h)
}

/// The per-file analysis output the cache can replay.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FileRecord {
    /// Findings after suppression directives, before the allowlist.
    pub findings: Vec<Finding>,
    /// Span open/close inventory for the cross-file balance pass.
    pub span_sites: Vec<SpanSite>,
    /// Whether the file was analyzed as a crate root (the
    /// `#![forbid(unsafe_code)]` requirement) — part of the key, since it
    /// depends on Cargo.toml layout, not file content.
    pub requires_forbid: bool,
}

/// The on-disk cache: content hash + record per path.
#[derive(Clone, Debug, Default)]
pub struct Cache {
    entries: BTreeMap<String, (u64, FileRecord)>,
}

impl Cache {
    /// Loads a cache file; any parse problem or version mismatch yields an
    /// empty cache (the cache is best-effort by design).
    pub fn load(path: &Path) -> Cache {
        let Ok(text) = fs::read_to_string(path) else {
            return Cache::default();
        };
        let Ok(v) = json::parse(&text) else {
            return Cache::default();
        };
        if v.get("version").as_str() != Some(cache_version().as_str()) {
            return Cache::default();
        }
        let Some(files) = v.get("files").as_object() else {
            return Cache::default();
        };
        let mut cache = Cache::default();
        for (path, entry) in files {
            let Some(record) = decode_record(path, entry) else {
                return Cache::default(); // corrupt entry: drop everything
            };
            let Some(hash) = entry
                .get("hash")
                .as_str()
                .and_then(|h| u64::from_str_radix(h, 16).ok())
            else {
                return Cache::default();
            };
            cache.entries.insert(path.clone(), (hash, record));
        }
        cache
    }

    /// Replays the record for `path` if the content hash and crate-root
    /// status both match.
    pub fn lookup(&self, path: &str, hash: u64, requires_forbid: bool) -> Option<&FileRecord> {
        self.entries.get(path).and_then(|(h, record)| {
            (*h == hash && record.requires_forbid == requires_forbid).then_some(record)
        })
    }

    /// Records a freshly analyzed file.
    pub fn insert(&mut self, path: &str, hash: u64, record: FileRecord) {
        self.entries.insert(path.to_string(), (hash, record));
    }

    /// Drops entries for files that no longer exist in the scan set, so
    /// deleted files don't pin stale records forever.
    pub fn retain_paths(&mut self, live: &dyn Fn(&str) -> bool) {
        self.entries.retain(|path, _| live(path));
    }

    /// Serializes and writes the cache; errors are ignored (best-effort).
    pub fn save(&self, path: &Path) {
        if let Some(dir) = path.parent() {
            let _ = fs::create_dir_all(dir);
        }
        let _ = fs::write(path, self.render());
    }

    fn render(&self) -> String {
        let mut s = format!("{{\"version\":\"{}\",\"files\":{{", cache_version());
        for (i, (path, (hash, record))) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\"{}\":{{\"hash\":\"{hash:016x}\",\"forbid\":{},\"findings\":[",
                esc(path),
                record.requires_forbid
            ));
            for (k, f) in record.findings.iter().enumerate() {
                if k > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"rule\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                    esc(f.rule),
                    f.line,
                    esc(&f.message)
                ));
            }
            s.push_str("],\"spans\":[");
            for (k, site) in record.span_sites.iter().enumerate() {
                if k > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"kind\":\"{}\",\"line\":{},\"open\":{}}}",
                    esc(&site.kind),
                    site.line,
                    site.is_open
                ));
            }
            s.push_str("]}");
        }
        s.push_str("}}");
        s
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn decode_record(path: &str, entry: &Value) -> Option<FileRecord> {
    let mut record = FileRecord {
        requires_forbid: entry.get("forbid").as_bool()?,
        ..FileRecord::default()
    };
    for f in entry.get("findings").as_array()? {
        // Rule names intern back to the static registry; an unknown name
        // means the rule set changed under us — reject.
        let rule = rule_info(f.get("rule").as_str()?)?.name;
        record.findings.push(Finding {
            rule,
            path: path.to_string(),
            line: f.get("line").as_u64()? as u32,
            message: f.get("message").as_str()?.to_string(),
        });
    }
    for s in entry.get("spans").as_array()? {
        record.span_sites.push(SpanSite {
            kind: s.get("kind").as_str()?.to_string(),
            line: s.get("line").as_u64()? as u32,
            is_open: s.get("open").as_bool()?,
        });
    }
    Some(record)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> FileRecord {
        FileRecord {
            findings: vec![Finding {
                rule: "wall-clock",
                path: "src/a.rs".to_string(),
                line: 9,
                message: "uses `Instant::now()` — \"now\"".to_string(),
            }],
            span_sites: vec![SpanSite {
                kind: "ChunkSeal".into(),
                line: 12,
                is_open: true,
            }],
            requires_forbid: true,
        }
    }

    #[test]
    fn roundtrips_through_disk_format() {
        let mut cache = Cache::default();
        cache.insert("src/a.rs", 0xdead_beef, record());
        let text = cache.render();
        let v = json::parse(&text).expect("cache renders valid JSON");
        assert_eq!(v.get("version").as_str(), Some(cache_version().as_str()));
        // Decode the way load() does.
        let entry = v.get("files").get("src/a.rs");
        let decoded = decode_record("src/a.rs", entry).expect("decodes");
        assert_eq!(decoded, record());
    }

    #[test]
    fn lookup_requires_hash_and_forbid_match() {
        let mut cache = Cache::default();
        cache.insert("src/a.rs", 7, record());
        assert!(cache.lookup("src/a.rs", 7, true).is_some());
        assert!(
            cache.lookup("src/a.rs", 8, true).is_none(),
            "content changed"
        );
        assert!(
            cache.lookup("src/a.rs", 7, false).is_none(),
            "crate-root status changed"
        );
        assert!(cache.lookup("src/b.rs", 7, true).is_none());
    }

    #[test]
    fn version_mismatch_drops_the_cache() {
        let mut cache = Cache::default();
        cache.insert("src/a.rs", 7, record());
        let stale = cache
            .render()
            .replace(&cache_version(), "detlint-cache-v0:old:0");
        let dir = std::env::temp_dir().join("detlint-cache-test");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("stale.json");
        fs::write(&path, stale).unwrap();
        assert!(Cache::load(&path).entries.is_empty());
        fs::write(&path, cache.render()).unwrap();
        assert_eq!(Cache::load(&path).entries.len(), 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn content_hash_is_stable_and_discriminating() {
        assert_eq!(content_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(content_hash("a"), content_hash("b"));
        assert_eq!(content_hash("fn main() {}"), content_hash("fn main() {}"));
    }
}
