//! Structural (scope-aware) rules — detlint's second phase, over the
//! [`crate::scope::ScopeTree`].
//!
//! These are the merge-contract rules (DESIGN.md §8.5): each one defends
//! an invariant of the §9 shard merge contract or the §11 causal span
//! model that a flat token scan cannot express, because the hazard is a
//! property of *where* a construct sits (inside a scheduler handler,
//! inside a `merge` impl) or of the *whole scan set* (a span kind opened
//! in one crate and closed in another).
//!
//! Per-file rules produced here: `shared-mutable-state`,
//! `direct-trace-emit`, `section-discipline`, `unordered-float-merge`,
//! and the per-site half of `span-balance` (helper/kind/arity checks
//! against the `span.rs` registry). The cross-file half of
//! `span-balance` — every kind opened somewhere must close somewhere —
//! is assembled by [`crate::scan`] from the [`SpanSite`] inventory each
//! file reports.

use crate::lexer::{Comment, Tok, TokKind};
use crate::rules::{
    hash_bindings, ident, punct, statement_start, AttrKind, Finding, GuardedRange,
    HASH_ITER_METHODS,
};
use crate::scope::{ScopeKind, ScopeTree};

/// The span registry, mirroring `crates/telemetry/src/span.rs`: for each
/// `SpanKind` variant, the id helper and its identity-field count.
///
/// detlint cannot see across the crate boundary at type level, so this
/// table is the contract: if `span.rs` gains a kind or a field, this
/// table (and DESIGN.md §11) must change with it — the span-balance
/// fixture pins the table against drift.
pub const SPAN_REGISTRY: &[(&str, &str, usize)] = &[
    ("Broadcast", "broadcast_span", 1),
    ("ViewerSession", "viewer_session_span", 2),
    ("ChunkSeal", "chunk_seal_span", 2),
    ("OriginFetch", "origin_fetch_span", 3),
    ("ViewerDeliver", "viewer_deliver_span", 3),
    ("OverlayFrame", "overlay_frame_span", 2),
];

/// Accumulator types whose `merge`/`fold` impls must fold in a
/// deterministic order (they are merged across shards / chunks, so any
/// iteration-order dependence lands straight in figures).
const MERGEABLE: &[&str] = &[
    "StreamingCampaign",
    "QuantileSketch",
    "ObsReport",
    "OnlineStats",
];

/// One span open/close emission site, for the cross-file inventory.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanSite {
    /// `SpanKind` variant name (`ViewerSession`).
    pub kind: String,
    /// 1-based line of the emission.
    pub line: u32,
    /// `SpanOpen` vs `SpanClose`.
    pub is_open: bool,
}

/// Output of the structural pass over one file.
#[derive(Clone, Debug, Default)]
pub struct StructuralOutput {
    pub findings: Vec<Finding>,
    /// Every span emission site (opens and closes) found in the file.
    pub span_sites: Vec<SpanSite>,
}

/// Everything the structural pass needs for one file.
pub struct StructuralContext<'a> {
    pub path: &'a str,
    pub tokens: &'a [Tok],
    pub comments: &'a [Comment],
    pub tree: &'a ScopeTree,
    pub ranges: &'a [GuardedRange],
}

fn in_test_range(ranges: &[GuardedRange], i: usize) -> bool {
    ranges
        .iter()
        .any(|r| r.kind == AttrKind::TestOnly && r.start <= i && i <= r.end)
}

/// Runs the structural rules over one file.
pub fn check_file(ctx: &StructuralContext) -> StructuralOutput {
    let mut out = StructuralOutput::default();
    let mut emit = |rule: &'static str, line: u32, message: String| {
        out.findings.push(Finding {
            rule,
            path: ctx.path.to_string(),
            line,
            message,
        });
    };
    shared_mutable_state(ctx, &mut emit);
    direct_trace_emit(ctx, &mut emit);
    section_discipline(ctx, &mut emit);
    unordered_float_merge(ctx, &mut emit);
    span_sites(ctx, &mut emit, &mut out.span_sites);
    out.findings
        .sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out.findings.dedup();
    out
}

// --- shared-mutable-state ------------------------------------------------

/// Is this file shard-executed code? Path-scoped to the crates whose code
/// runs inside scheduler lanes, plus an explicit opt-in directive for
/// code that moves (and for fixtures).
fn is_shard_scope(path: &str, comments: &[Comment]) -> bool {
    let by_path = ["crates/sim/", "crates/cdn/", "crates/core/"]
        .iter()
        .any(|p| path.starts_with(p));
    by_path
        || comments
            .iter()
            .any(|c| c.text.contains("detlint::scope(shard)"))
}

fn shared_mutable_state(ctx: &StructuralContext, emit: &mut impl FnMut(&'static str, u32, String)) {
    if !is_shard_scope(ctx.path, ctx.comments) || ctx.path.split('/').any(|c| c == "tests") {
        return;
    }
    let tokens = ctx.tokens;
    const RULE: &str = "shared-mutable-state";
    for i in 0..tokens.len() {
        if in_test_range(ctx.ranges, i) {
            continue;
        }
        let line = tokens[i].line;
        match ident(tokens, i) {
            Some("static") if ident(tokens, i + 1) == Some("mut") => emit(
                RULE,
                line,
                "`static mut` in shard-executed code races across lanes; move the state into the shard struct".to_string(),
            ),
            Some(name @ ("RefCell" | "Mutex" | "RwLock")) => emit(
                RULE,
                line,
                format!("`{name}` in shard-executed code hides shared mutability from the merge contract; own the state in the shard and mutate through `&mut`"),
            ),
            // `Cell` only as `Cell::…` or `Cell<…>` so a local type named
            // Cell (e.g. a grid cell struct) is not confused with
            // `std::cell::Cell`.
            Some("Cell")
                if (punct(tokens, i + 1) == Some(':') && punct(tokens, i + 2) == Some(':'))
                    || punct(tokens, i + 1) == Some('<') =>
            {
                emit(
                    RULE,
                    line,
                    "`Cell` in shard-executed code hides shared mutability; own the state in the shard struct".to_string(),
                )
            }
            Some("Ordering")
                if punct(tokens, i + 1) == Some(':')
                    && punct(tokens, i + 2) == Some(':')
                    && ident(tokens, i + 3) == Some("Relaxed") =>
            {
                emit(
                    RULE,
                    line,
                    "`Ordering::Relaxed` atomics give no cross-lane ordering, so observed values diverge between runs; shard state must not be shared at all".to_string(),
                )
            }
            _ => {}
        }
    }
}

// --- direct-trace-emit ---------------------------------------------------

/// The trace-sink receiver a handler scope is allowed to emit through:
/// the `EventCtx` parameter's name, when the scope is a handler.
fn handler_ctx_name(ctx: &StructuralContext, scope_idx: usize) -> Option<String> {
    let scope = &ctx.tree.scopes[scope_idx];
    let header = &ctx.tokens[scope.header_start..scope.open];
    match &scope.kind {
        ScopeKind::Closure(params) => {
            let first = params.first().map(String::as_str);
            // The scheduler-handler convention: the first closure param is
            // the `EventCtx` (named `ctx`, `_ctx`, or `_` when unused with
            // an explicitly `&mut`-typed shard param — the `BackendEvent`
            // shape).
            match first {
                Some("ctx") | Some("_ctx") => Some(first.expect("matched").to_string()),
                Some("_")
                    if params.len() == 2
                        && header
                            .windows(2)
                            .any(|w| punct(w, 0) == Some('&') && ident(w, 1) == Some("mut")) =>
                {
                    Some("_".to_string())
                }
                _ => {
                    // Explicitly typed: `|c: &mut dyn EventCtx<S>, …|`.
                    if header
                        .iter()
                        .any(|t| t.kind == TokKind::Ident("EventCtx".into()))
                    {
                        first.map(str::to_string)
                    } else {
                        None
                    }
                }
            }
        }
        ScopeKind::Fn(_) => {
            // A fn taking `name: &mut dyn EventCtx<…>`: find the parameter
            // declaration (`name :` — a single colon, not a `::` path)
            // whose type span mentions `EventCtx`.
            for j in 0..header.len() {
                let Some(name) = ident(header, j) else {
                    continue;
                };
                let is_decl = punct(header, j + 1) == Some(':')
                    && punct(header, j + 2) != Some(':')
                    && (j == 0 || punct(header, j - 1) != Some(':'));
                if !is_decl {
                    continue;
                }
                // Scan the type up to a `,` or `)` outside nesting.
                let mut depth = 0isize;
                let mut k = j + 2;
                while k < header.len() {
                    match &header[k].kind {
                        TokKind::Ident(s) if s == "EventCtx" => {
                            return Some(name.to_string());
                        }
                        TokKind::Punct('<' | '(' | '[') => depth += 1,
                        TokKind::Punct('>' | ')' | ']') => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        TokKind::Punct(',') if depth == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
            }
            None
        }
        _ => None,
    }
}

fn direct_trace_emit(ctx: &StructuralContext, emit: &mut impl FnMut(&'static str, u32, String)) {
    let tokens = ctx.tokens;
    const RULE: &str = "direct-trace-emit";
    // Precompute which scopes are handlers and their ctx names.
    let handlers: Vec<Option<String>> = (0..ctx.tree.scopes.len())
        .map(|idx| handler_ctx_name(ctx, idx))
        .collect();
    if handlers.iter().all(Option::is_none) {
        return;
    }
    for i in 0..tokens.len() {
        let is_emit = ident(tokens, i) == Some("emit");
        let is_span_call = matches!(ident(tokens, i), Some("span_open") | Some("span_close"));
        if !(is_emit || is_span_call)
            || punct(tokens, i + 1) != Some('(')
            || (i == 0 || punct(tokens, i - 1) != Some('.'))
        {
            continue;
        }
        // Innermost handler scope containing this call, if any.
        let Some(ctx_name) = ctx
            .tree
            .enclosing(i)
            .into_iter()
            .find_map(|s| handlers[s].clone())
        else {
            continue;
        };
        let line = tokens[i].line;
        if is_span_call {
            let m = ident(tokens, i).expect("matched above");
            emit(
                RULE,
                line,
                format!("`.{m}(…)` inside a scheduler handler bypasses the per-shard trace buffer; build the TraceEvent and pass it to `{ctx_name}.emit(…)`"),
            );
            continue;
        }
        let receiver = if i >= 2 { ident(tokens, i - 2) } else { None };
        if receiver != Some(ctx_name.as_str()) {
            let recv = receiver.unwrap_or("<expr>");
            emit(
                RULE,
                line,
                format!("`{recv}.emit(…)` inside a scheduler handler writes the trace sink directly, racing the epoch-barrier merge; route through `{ctx_name}.emit(…)` (the EventCtx parameter)"),
            );
        }
    }
}

// --- section-discipline --------------------------------------------------

fn section_discipline(ctx: &StructuralContext, emit: &mut impl FnMut(&'static str, u32, String)) {
    let tokens = ctx.tokens;
    const RULE: &str = "section-discipline";
    for i in 0..tokens.len() {
        if ident(tokens, i) != Some("begin")
            || punct(tokens, i + 1) != Some('(')
            || i == 0
            || punct(tokens, i - 1) != Some('.')
        {
            continue;
        }
        let line = tokens[i].line;
        let start = statement_start(tokens, i);
        if ident(tokens, start) == Some("let")
            && ident(tokens, start + 1) == Some("_")
            && punct(tokens, start + 2) == Some('=')
        {
            emit(
                RULE,
                line,
                "`let _ = ….begin()` drops the SectionStamp immediately, recording a zero-length section; bind it (`let stamp = ….begin()`) and pass it to `.end(stamp)`".to_string(),
            );
            continue;
        }
        // Bare discard: a `….begin();` statement that neither binds nor
        // feeds the stamp anywhere (`off.end(off.begin())` and
        // `return ….begin()` are fine).
        let mut end = i;
        while end < tokens.len() && !matches!(punct(tokens, end), Some(';') | Some('}')) {
            end += 1;
        }
        if punct(tokens, end) != Some(';') {
            continue; // tail expression — the stamp is the value
        }
        let stmt = &tokens[start..end];
        let feeds_stamp = stmt.iter().any(|t| {
            matches!(&t.kind, TokKind::Ident(s) if s == "let" || s == "end" || s == "return")
                || t.kind == TokKind::Punct('=')
        });
        if !feeds_stamp {
            emit(
                RULE,
                line,
                "`….begin();` discards the SectionStamp, so the section never records; bind the stamp and pass it to `.end(stamp)`".to_string(),
            );
        }
    }
}

// --- unordered-float-merge -----------------------------------------------

fn unordered_float_merge(
    ctx: &StructuralContext,
    emit: &mut impl FnMut(&'static str, u32, String),
) {
    let tokens = ctx.tokens;
    const RULE: &str = "unordered-float-merge";
    let bindings = hash_bindings(tokens);
    if bindings.is_empty() {
        return;
    }
    for (idx, scope) in ctx.tree.scopes.iter().enumerate() {
        let ScopeKind::Fn(name) = &scope.kind else {
            continue;
        };
        if name != "merge" && name != "fold" {
            continue;
        }
        // The enclosing impl must target a mergeable accumulator.
        let mut p = idx;
        let mut target: Option<&str> = None;
        while p != 0 {
            p = ctx.tree.scopes[p].parent;
            if let ScopeKind::Impl { type_name, .. } = &ctx.tree.scopes[p].kind {
                target = Some(type_name.as_str());
                break;
            }
        }
        let Some(target) = target.filter(|t| MERGEABLE.contains(t)) else {
            continue;
        };
        let body = &tokens[scope.open..=scope.close.min(tokens.len() - 1)];
        // Only merges that accumulate (`+=` or a `sum()` fold) can be
        // order-sensitive in the float sense.
        let accumulates = body
            .windows(2)
            .any(|w| punct(w, 0) == Some('+') && punct(w, 1) == Some('='))
            || body.iter().any(|t| t.kind == TokKind::Ident("sum".into()));
        if !accumulates {
            continue;
        }
        // Flag any for-loop whose header (between `for` and the body `{`)
        // draws from a hash-ordered binding, and any hash-iteration method
        // chain on one (the latter also trips the token rule; scan() keeps
        // this sharper finding).
        let mut k = scope.open;
        while k <= scope.close && k < tokens.len() {
            if ident(tokens, k) == Some("for") {
                let mut h = k + 1;
                while h < tokens.len() && h <= scope.close && punct(tokens, h) != Some('{') {
                    if let Some(name) = ident(tokens, h) {
                        if bindings.iter().any(|b| b == name) {
                            emit(
                                RULE,
                                tokens[h].line,
                                format!("`{target}::{fn_name}` folds floats while iterating `{name}`, a HashMap/HashSet — merge order then depends on hash order and the merged result is not byte-stable; iterate a BTreeMap/Vec or sort first", fn_name = name_of(&ctx.tree.scopes[idx].kind)),
                            );
                        }
                    }
                    h += 1;
                }
                k = h;
                continue;
            }
            if let Some(name) = ident(tokens, k) {
                if bindings.iter().any(|b| b == name)
                    && punct(tokens, k + 1) == Some('.')
                    && ident(tokens, k + 2).is_some_and(|m| HASH_ITER_METHODS.contains(&m))
                    && punct(tokens, k + 3) == Some('(')
                {
                    emit(
                        RULE,
                        tokens[k].line,
                        format!("`{target}::{fn_name}` folds floats over `{name}`'s hash order; the merged result is not byte-stable — iterate a BTreeMap/Vec or sort first", fn_name = name_of(&ctx.tree.scopes[idx].kind)),
                    );
                }
            }
            k += 1;
        }
    }
}

fn name_of(kind: &ScopeKind) -> &str {
    match kind {
        ScopeKind::Fn(n) => n,
        _ => "merge",
    }
}

// --- span-balance (per-site + inventory) ---------------------------------

/// `let <name> = [path::]helper(args…);` bindings, for resolving
/// `id: <name>` at emission sites.
fn span_id_bindings(tokens: &[Tok]) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 3 < tokens.len() {
        if ident(tokens, i) == Some("let") {
            let mut at = i + 1;
            if ident(tokens, at) == Some("mut") {
                at += 1;
            }
            if let Some(name) = ident(tokens, at) {
                if punct(tokens, at + 1) == Some('=') {
                    if let Some((helper, arity)) = call_head(tokens, at + 2) {
                        out.push((name.to_string(), helper, arity));
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// If the tokens at `i` start a (possibly path-qualified) call
/// `a::b::helper(args…)`, returns the helper name and top-level arg count.
fn call_head(tokens: &[Tok], mut i: usize) -> Option<(String, usize)> {
    let mut last = None;
    while let Some(name) = ident(tokens, i) {
        last = Some(name.to_string());
        if punct(tokens, i + 1) == Some(':') && punct(tokens, i + 2) == Some(':') {
            i += 3;
            continue;
        }
        i += 1;
        break;
    }
    let helper = last?;
    if punct(tokens, i) != Some('(') {
        return None;
    }
    // Count top-level commas to the matching `)`.
    let mut depth = 0isize;
    let mut args = 0usize;
    let mut any = false;
    let mut k = i;
    while k < tokens.len() {
        match &tokens[k].kind {
            TokKind::Punct('(' | '[' | '{') => depth += 1,
            TokKind::Punct(')' | ']' | '}') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokKind::Punct(',') if depth == 1 => args += 1,
            _ if depth >= 1 => any = true,
            _ => {}
        }
        k += 1;
    }
    if any {
        args += 1;
    }
    Some((helper, args))
}

fn span_sites(
    ctx: &StructuralContext,
    emit: &mut impl FnMut(&'static str, u32, String),
    sites: &mut Vec<SpanSite>,
) {
    let tokens = ctx.tokens;
    const RULE: &str = "span-balance";
    let id_bindings = span_id_bindings(tokens);
    let mut i = 0;
    while i < tokens.len() {
        let which = match ident(tokens, i) {
            Some("SpanOpen") => Some(true),
            Some("SpanClose") => Some(false),
            _ => None,
        };
        let Some(is_open) = which else {
            i += 1;
            continue;
        };
        // Must be `TraceEvent::SpanOpen {` / `TraceEvent::SpanClose {`.
        let qualified = i >= 3
            && punct(tokens, i - 1) == Some(':')
            && punct(tokens, i - 2) == Some(':')
            && ident(tokens, i - 3) == Some("TraceEvent");
        if !qualified || punct(tokens, i + 1) != Some('{') {
            i += 1;
            continue;
        }
        let open_brace = i + 1;
        let mut depth = 0isize;
        let mut close_brace = open_brace;
        for k in open_brace..tokens.len() {
            match punct(tokens, k) {
                Some('{') => depth += 1,
                Some('}') => {
                    depth -= 1;
                    if depth == 0 {
                        close_brace = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        // Emission vs pattern: an emission carries a literal
        // `kind: SpanKind::Variant` field and is *not* followed by `=`
        // (match arms continue `} =>`, `if let` destructures `} = …`).
        let mut kind_variant: Option<(usize, String)> = None;
        for k in open_brace..close_brace {
            if ident(tokens, k) == Some("kind")
                && punct(tokens, k + 1) == Some(':')
                && ident(tokens, k + 2) == Some("SpanKind")
                && punct(tokens, k + 3) == Some(':')
                && punct(tokens, k + 4) == Some(':')
            {
                if let Some(v) = ident(tokens, k + 5) {
                    kind_variant = Some((k, v.to_string()));
                }
                break;
            }
        }
        let is_pattern = punct(tokens, close_brace + 1) == Some('=');
        let Some((_, variant)) = kind_variant else {
            i = close_brace.max(i) + 1;
            continue;
        };
        if is_pattern {
            i = close_brace + 1;
            continue;
        }
        let line = tokens[i].line;
        sites.push(SpanSite {
            kind: variant.clone(),
            line,
            is_open,
        });
        // Per-site check: the `id:` value must be built by the registry's
        // helper for this kind, with the registry's identity-field count.
        let registry = SPAN_REGISTRY.iter().find(|(v, _, _)| *v == variant);
        let mut field_depth = 0isize;
        let mut id_value: Option<usize> = None;
        for k in open_brace + 1..close_brace {
            match punct(tokens, k) {
                Some('{' | '(' | '[') => field_depth += 1,
                Some('}' | ')' | ']') => field_depth -= 1,
                _ => {}
            }
            if field_depth == 0
                && ident(tokens, k) == Some("id")
                && punct(tokens, k + 1) == Some(':')
                && punct(tokens, k + 2) != Some(':')
            {
                id_value = Some(k + 2);
                break;
            }
        }
        if let (Some((_, helper, arity)), Some(v)) = (registry, id_value) {
            let resolved = call_head(tokens, v).or_else(|| {
                ident(tokens, v)
                    .filter(|_| !matches!(punct(tokens, v + 1), Some('(') | Some(':')))
                    .and_then(|name| {
                        id_bindings
                            .iter()
                            .rev()
                            .find(|(n, _, _)| n == name)
                            .map(|(_, h, a)| (h.clone(), *a))
                    })
            });
            match resolved {
                Some((h, _)) if h == "span_id" => {
                    // `span_id(SpanKind::V, &[a, b, …])`: check the kind
                    // token and the slice length.
                    check_span_id_call(tokens, v, &variant, *arity, line, emit);
                }
                Some((h, nargs)) if SPAN_REGISTRY.iter().any(|(_, rh, _)| *rh == h) => {
                    if h != *helper {
                        emit(
                            RULE,
                            line,
                            format!("span id built with `{h}` but the event kind is `SpanKind::{variant}` — the registry pairs {variant} with `{helper}`, so open and close ids will never match"),
                        );
                    } else if nargs != *arity {
                        emit(
                            RULE,
                            line,
                            format!("`{helper}` called with {nargs} identity field(s); the span.rs registry defines {arity} for `SpanKind::{variant}` — ids will not match the other end of the span"),
                        );
                    }
                }
                _ => {} // literal / field access / unknown — inventory only
            }
        }
        i = close_brace + 1;
    }
}

/// Validates a literal `span_id(SpanKind::V, &[…])` call at `v` against
/// the registry entry for the surrounding event's `variant`/`arity`.
fn check_span_id_call(
    tokens: &[Tok],
    v: usize,
    variant: &str,
    arity: usize,
    line: u32,
    emit: &mut impl FnMut(&'static str, u32, String),
) {
    const RULE: &str = "span-balance";
    // Find `SpanKind :: X` after the call head.
    let mut k = v;
    while k < tokens.len() && punct(tokens, k) != Some('(') {
        k += 1;
    }
    let open = k;
    let mut close = open;
    let mut depth = 0isize;
    while close < tokens.len() {
        match punct(tokens, close) {
            Some('(' | '[') => depth += 1,
            Some(')' | ']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        close += 1;
    }
    let mut arg_kind = None;
    for k in open..close {
        if ident(tokens, k) == Some("SpanKind")
            && punct(tokens, k + 1) == Some(':')
            && punct(tokens, k + 2) == Some(':')
        {
            arg_kind = ident(tokens, k + 3).map(str::to_string);
            break;
        }
    }
    if let Some(arg_kind) = arg_kind {
        if arg_kind != variant {
            emit(
                RULE,
                line,
                format!("`span_id(SpanKind::{arg_kind}, …)` inside a `SpanKind::{variant}` event — open and close ids will never match"),
            );
            return;
        }
    }
    // Count elements of the `&[a, b, …]` slice.
    for k in open..close {
        if punct(tokens, k) == Some('[') {
            let mut d = 0isize;
            let mut elems = 0usize;
            let mut any = false;
            for m in k..=close {
                match punct(tokens, m) {
                    Some('[' | '(') => d += 1,
                    Some(']' | ')') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    Some(',') if d == 1 => elems += 1,
                    _ => any = true,
                }
            }
            if any {
                elems += 1;
            }
            if elems != arity {
                emit(
                    RULE,
                    line,
                    format!("`span_id(SpanKind::{variant}, &[…])` passes {elems} identity field(s); the span.rs registry defines {arity}"),
                );
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::guarded_ranges;
    use crate::scope::ScopeTree;

    fn run(path: &str, src: &str) -> StructuralOutput {
        let lexed = lex(src);
        let tree = ScopeTree::build(&lexed.tokens);
        let ranges = guarded_ranges(&lexed.tokens);
        check_file(&StructuralContext {
            path,
            tokens: &lexed.tokens,
            comments: &lexed.comments,
            tree: &tree,
            ranges: &ranges,
        })
    }

    fn rules_of(path: &str, src: &str) -> Vec<&'static str> {
        run(path, src)
            .findings
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    // --- shared-mutable-state --------------------------------------------

    #[test]
    fn shard_crates_flag_interior_mutability() {
        // `Cell<u8>` and `Cell::new` produce identical findings on the
        // same line, which dedup to one — so 4, not 5.
        let src = "static mut HITS: u64 = 0; fn f() { let m = Mutex::new(0); let r = RefCell::new(1); let c: Cell<u8> = Cell::new(0); }";
        let rules = rules_of("crates/sim/src/x.rs", src);
        assert_eq!(rules, vec!["shared-mutable-state"; 4], "{rules:?}");
    }

    #[test]
    fn relaxed_atomics_are_flagged_seqcst_is_not() {
        let src =
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); c.load(Ordering::SeqCst); }";
        assert_eq!(
            rules_of("crates/cdn/src/x.rs", src),
            vec!["shared-mutable-state"]
        );
    }

    #[test]
    fn local_struct_named_cell_is_not_flagged() {
        let src = "struct Cell { cost: u64 } fn f() { let c = Cell { cost: 1 }; g(&mut Cell { cost: 2 }); }";
        assert!(rules_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn non_shard_paths_and_test_code_are_exempt() {
        let src = "fn f() { let m = Mutex::new(0); }";
        assert!(rules_of("crates/telemetry/src/x.rs", src).is_empty());
        assert!(rules_of("crates/sim/tests/x.rs", src).is_empty());
        let gated = "#[cfg(test)] mod tests { fn f() { let m = Mutex::new(0); } }";
        assert!(rules_of("crates/sim/src/x.rs", gated).is_empty());
    }

    #[test]
    fn scope_directive_opts_a_file_in() {
        let src = "// detlint::scope(shard)\nfn f() { let m = RwLock::new(0); }";
        assert_eq!(rules_of("src/x.rs", src), vec!["shared-mutable-state"]);
    }

    // --- direct-trace-emit -----------------------------------------------

    #[test]
    fn captured_sink_in_handler_closure_is_flagged() {
        let src = "fn f() { sched.schedule(Box::new(move |ctx, shard: &mut Pop| { shard.telemetry.emit(now, ev); })); }";
        let out = run("crates/cdn/src/x.rs", src);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, "direct-trace-emit");
        assert!(out.findings[0].message.contains("ctx.emit"));
    }

    #[test]
    fn ctx_emit_in_handler_is_fine() {
        let src =
            "fn f() { sched.schedule(Box::new(move |ctx, shard: &mut Pop| { ctx.emit(ev); })); }";
        assert!(rules_of("crates/cdn/src/x.rs", src).is_empty());
    }

    #[test]
    fn underscore_ctx_with_typed_shard_is_a_handler() {
        let src = "fn f() { sched.schedule(Box::new(|_, cell: &mut Cell| { cell.telemetry.emit(ev); })); }";
        assert_eq!(rules_of("src/x.rs", src), vec!["direct-trace-emit"]);
    }

    #[test]
    fn span_open_close_methods_in_handler_are_flagged() {
        let src = "fn f() { run(Box::new(|ctx, s: &mut S| { s.tracer.span_open(id); s.tracer.span_close(id); })); }";
        assert_eq!(
            rules_of("src/x.rs", src),
            vec!["direct-trace-emit", "direct-trace-emit"]
        );
    }

    #[test]
    fn emit_outside_handlers_is_not_flagged() {
        // Legacy Scheduler tickers (`|sched, world|`) and plain methods
        // write the sink directly by design.
        let src = "fn f() { spawn(move |sched, world: &mut World| { world.telemetry.emit(t, ev); }); self.telemetry.emit(t, ev); }";
        assert!(rules_of("crates/crawler/src/x.rs", src).is_empty());
    }

    #[test]
    fn fn_taking_event_ctx_is_a_handler_scope() {
        let src =
            "fn apply(c: &mut dyn EventCtx<S>, s: &mut S) { s.telemetry.emit(ev); c.emit(ev2); }";
        let out = run("src/x.rs", src);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert!(out.findings[0].message.contains("c.emit"));
    }

    // --- section-discipline ----------------------------------------------

    #[test]
    fn discarded_and_bare_stamps_are_flagged() {
        let src = "fn f(&mut self) { let _ = self.sec.begin(); self.sec.begin(); }";
        assert_eq!(
            rules_of("src/x.rs", src),
            vec!["section-discipline", "section-discipline"]
        );
    }

    #[test]
    fn named_stamp_and_inline_end_are_fine() {
        let src = "fn f(&mut self) { let stamp = self.sec.begin(); work(); self.sec.end(stamp); off.end(off.begin()); }";
        assert!(rules_of("src/x.rs", src).is_empty());
    }

    #[test]
    fn returned_stamp_is_fine() {
        let src = "fn start(&self) -> SectionStamp { self.sec.begin() } fn alt(&self) -> SectionStamp { return self.sec.begin(); }";
        assert!(rules_of("src/x.rs", src).is_empty());
    }

    // --- unordered-float-merge -------------------------------------------

    #[test]
    fn hash_iteration_in_merge_impl_is_flagged() {
        let src = "struct StreamingCampaign { weights: HashMap<u64, f64>, total: f64 } \
                   impl StreamingCampaign { fn merge(&mut self, other: &Self) { \
                   for (_k, v) in &other.weights { self.total += v; } } }";
        let out = run("src/x.rs", src);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, "unordered-float-merge");
        assert!(out.findings[0].message.contains("StreamingCampaign"));
    }

    #[test]
    fn ordered_merge_and_non_mergeable_types_are_fine() {
        let ordered = "struct StreamingCampaign { per_day: Vec<f64> } \
                       impl StreamingCampaign { fn merge(&mut self, other: &Self) { \
                       for (a, b) in self.per_day.iter_mut().zip(&other.per_day) { *a += b; } } }";
        assert!(rules_of("src/x.rs", ordered).is_empty());
        let other_ty = "struct Gauge { m: HashMap<u64, f64>, t: f64 } \
                        impl Gauge { fn merge(&mut self, o: &Self) { for v in o.m.values() { self.t += v; } } }";
        let rules = rules_of("src/x.rs", other_ty);
        assert!(
            !rules.contains(&"unordered-float-merge"),
            "non-mergeable type should not trip the merge rule: {rules:?}"
        );
    }

    #[test]
    fn merge_without_accumulation_is_fine() {
        let src = "struct QuantileSketch { seen: HashSet<u64> } \
                   impl QuantileSketch { fn merge(&mut self, other: &Self) { \
                   for k in &other.seen { self.seen.insert(*k); } } }";
        // No += / sum in the body — not a float fold. (The hash iteration
        // itself is still the token rule's business.)
        assert!(!rules_of("src/x.rs", src).contains(&"unordered-float-merge"));
    }

    // --- span-balance (per-site) -----------------------------------------

    #[test]
    fn emission_sites_are_inventoried_patterns_are_not() {
        let src = "fn f() { t.emit(now, TraceEvent::SpanOpen { id: broadcast_span(b), parent: 0, kind: SpanKind::Broadcast, broadcast: b, subject: 0, site: 0 }); \
                   match ev { TraceEvent::SpanOpen { id, .. } => use_(id), _ => {} } \
                   if let TraceEvent::SpanClose { id, kind } = ev2 { use_(id); } }";
        let out = run("src/x.rs", src);
        assert_eq!(
            out.span_sites,
            vec![SpanSite {
                kind: "Broadcast".into(),
                line: 1,
                is_open: true
            }]
        );
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn wrong_helper_for_kind_is_flagged() {
        let src = "fn f() { t.emit(now, TraceEvent::SpanClose { id: origin_fetch_span(b, s, p), kind: SpanKind::ViewerDeliver }); }";
        let out = run("src/x.rs", src);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, "span-balance");
        assert!(out.findings[0].message.contains("viewer_deliver_span"));
    }

    #[test]
    fn wrong_arity_is_flagged_including_via_binding() {
        let direct = "fn f() { t.emit(now, TraceEvent::SpanOpen { id: chunk_seal_span(b), parent: 0, kind: SpanKind::ChunkSeal, broadcast: b, subject: 0, site: 0 }); }";
        let out = run("src/x.rs", direct);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert!(out.findings[0].message.contains("1 identity field"));

        let via_let = "fn f() { let span = crate::span::viewer_deliver_span(b, s); \
                       t.emit(now, TraceEvent::SpanOpen { id: span, parent: p, kind: SpanKind::ViewerDeliver, broadcast: b, subject: v, site: 0 }); }";
        let out = run("src/x.rs", via_let);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert!(out.findings[0].message.contains("2 identity field"));
    }

    #[test]
    fn raw_span_id_calls_are_checked() {
        let wrong_kind = "fn f() { t.emit(now, TraceEvent::SpanOpen { id: span_id(SpanKind::ChunkSeal, &[b, s]), parent: 0, kind: SpanKind::OriginFetch, broadcast: b, subject: s, site: p }); }";
        let out = run("src/x.rs", wrong_kind);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        let wrong_fields = "fn f() { t.emit(now, TraceEvent::SpanOpen { id: span_id(SpanKind::OriginFetch, &[b, s]), parent: 0, kind: SpanKind::OriginFetch, broadcast: b, subject: s, site: p }); }";
        let out = run("src/x.rs", wrong_fields);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert!(out.findings[0].message.contains("2 identity field"));
        let correct = "fn f() { t.emit(now, TraceEvent::SpanOpen { id: span_id(SpanKind::OriginFetch, &[b, s, pop as u64]), parent: 0, kind: SpanKind::OriginFetch, broadcast: b, subject: s, site: p }); }";
        assert!(run("src/x.rs", correct).findings.is_empty());
    }

    #[test]
    fn correct_helper_and_arity_are_clean() {
        let src = "fn f() { t.emit(now, TraceEvent::SpanOpen { id: overlay_frame_span(a, s), parent: 0, kind: SpanKind::OverlayFrame, broadcast: a, subject: s, site: 0 }); \
                   t.emit(later, TraceEvent::SpanClose { id: overlay_frame_span(a, s), kind: SpanKind::OverlayFrame }); }";
        let out = run("src/x.rs", src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.span_sites.len(), 2);
        assert!(out.span_sites[0].is_open && !out.span_sites[1].is_open);
    }
}
