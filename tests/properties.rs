//! Property-based tests over the workspace's core invariants: wire codecs
//! round-trip arbitrary values, the chunker conserves frames, playback
//! metrics stay in range and respond monotonically to the pre-buffer, and
//! the statistics toolkit keeps its promises.

#![forbid(unsafe_code)]

use bytes::Bytes;
use proptest::prelude::*;

use livescope_analysis::Cdf;
use livescope_cdn::Chunker;
use livescope_client::playback::{simulate_playback, ArrivedUnit};
use livescope_proto::control::{ControlRequest, ControlResponse, Scheme, Sealed, StreamUrl};
use livescope_proto::hls::{Chunk, ChunkList};
use livescope_proto::message::{ChatEvent, EventKind};
use livescope_proto::rtmp::{FrameMeta, Role, RtmpMessage, VideoFrame};
use livescope_sim::{SimDuration, SimTime};

fn arb_frame() -> impl Strategy<Value = VideoFrame> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..512),
        proptest::option::of(proptest::collection::vec(any::<u8>(), 0..64)),
    )
        .prop_map(|(seq, ts, key, payload, sig)| VideoFrame {
            meta: FrameMeta {
                sequence: seq,
                capture_ts_us: ts,
                keyframe: key,
                signature: sig.map(Bytes::from),
            },
            payload: Bytes::from(payload),
        })
}

fn arb_message() -> impl Strategy<Value = RtmpMessage> {
    prop_oneof![
        any::<u64>().prop_map(|nonce| RtmpMessage::Handshake { nonce }),
        ("[ -~]{0,64}", any::<bool>(), any::<u64>()).prop_map(|(token, publisher, user_id)| {
            RtmpMessage::Connect {
                token,
                role: if publisher {
                    Role::Publisher
                } else {
                    Role::Subscriber
                },
                user_id,
            }
        }),
        arb_frame().prop_map(RtmpMessage::Frame),
        any::<u64>().prop_map(|sequence| RtmpMessage::Ack { sequence }),
        Just(RtmpMessage::Close),
    ]
}

proptest! {
    #[test]
    fn rtmp_messages_roundtrip(msg in arb_message()) {
        let decoded = RtmpMessage::decode(msg.encode()).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn rtmp_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = RtmpMessage::decode(Bytes::from(bytes));
    }

    #[test]
    fn chunks_roundtrip(
        seq in any::<u64>(),
        start in any::<u64>(),
        dur in any::<u64>(),
        frames in proptest::collection::vec(arb_frame(), 0..8),
    ) {
        let chunk = Chunk { seq, start_ts_us: start, duration_us: dur, frames };
        prop_assert_eq!(Chunk::decode(chunk.encode()).unwrap(), chunk);
    }

    #[test]
    fn chunklists_roundtrip(seqs in proptest::collection::btree_set(0u64..10_000, 0..12)) {
        let chunks: Vec<Chunk> = seqs
            .iter()
            .map(|&s| Chunk { seq: s, start_ts_us: s * 3_000_000, duration_us: 3_000_000, frames: vec![] })
            .collect();
        let list = ChunkList::from_chunks(&chunks, 20);
        let parsed = ChunkList::parse(&list.serialize()).unwrap();
        prop_assert_eq!(parsed, list);
    }

    #[test]
    fn chat_events_roundtrip(
        broadcast in any::<u64>(),
        user in any::<u64>(),
        ts in any::<u64>(),
        comment in proptest::option::of("[ -~]{0,100}"),
    ) {
        let event = ChatEvent {
            broadcast_id: broadcast,
            user_id: user,
            ts_us: ts,
            kind: match comment {
                Some(text) => EventKind::Comment(text),
                None => EventKind::Heart,
            },
        };
        prop_assert_eq!(ChatEvent::decode(event.encode()).unwrap(), event);
    }

    #[test]
    fn control_messages_roundtrip(user in any::<u64>(), bcast in any::<u64>(), dc in 0u16..31) {
        let reqs = [
            ControlRequest::CreateBroadcast { user_id: user },
            ControlRequest::Join { broadcast_id: bcast, user_id: user },
            ControlRequest::GlobalList,
        ];
        for req in reqs {
            prop_assert_eq!(ControlRequest::decode(req.encode()).unwrap(), req);
        }
        let resp = ControlResponse::JoinInfo {
            rtmp_url: Some(StreamUrl { scheme: Scheme::Rtmp, dc, broadcast_id: bcast }),
            hls_url: StreamUrl { scheme: Scheme::Hls, dc, broadcast_id: bcast },
            can_comment: user.is_multiple_of(2),
        };
        prop_assert_eq!(ControlResponse::decode(resp.encode()).unwrap(), resp);
    }

    #[test]
    fn sealing_roundtrips_and_hides(payload in proptest::collection::vec(1u8..255, 1..200), key in any::<u64>(), nonce in any::<u64>()) {
        let sealed = Sealed::seal(&payload, key, nonce);
        prop_assert_eq!(&sealed.unseal(key).unwrap()[..], &payload[..]);
        if payload.len() >= 8 {
            // The plaintext must not appear in the ciphertext.
            let wire = sealed.wire();
            prop_assert!(!wire.windows(payload.len()).any(|w| w == payload));
        }
        prop_assert!(sealed.unseal(key ^ 1).is_err());
    }

    #[test]
    fn chunker_conserves_and_orders_frames(
        gaps_ms in proptest::collection::vec(1u64..500, 1..200),
        chunk_ms in prop_oneof![Just(1_000u64), Just(3_000), Just(10_000)],
    ) {
        let mut chunker = Chunker::new(SimDuration::from_millis(chunk_ms));
        let mut now = SimTime::ZERO;
        let mut emitted: Vec<u64> = Vec::new();
        for (i, gap) in gaps_ms.iter().enumerate() {
            now += SimDuration::from_millis(*gap);
            let frame = VideoFrame::new(i as u64, i as u64 * 40_000, false, Bytes::new());
            if let Some(ready) = chunker.push(now, frame) {
                emitted.extend(ready.chunk.frames.iter().map(|f| f.meta.sequence));
            }
        }
        if let Some(last) = chunker.flush(now + SimDuration::from_secs(60)) {
            emitted.extend(last.chunk.frames.iter().map(|f| f.meta.sequence));
        }
        // Every frame exactly once, in order.
        prop_assert_eq!(emitted, (0..gaps_ms.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn playback_metrics_stay_in_range(
        delays_ms in proptest::collection::vec(0u64..5_000, 1..150),
        prebuffer_ms in 0u64..12_000,
    ) {
        let units: Vec<ArrivedUnit> = delays_ms
            .iter()
            .enumerate()
            .map(|(i, &d)| ArrivedUnit {
                media_ts_us: i as u64 * 40_000,
                duration_us: 40_000,
                arrival: SimTime::from_millis(i as u64 * 40 + d),
            })
            .collect();
        let report = simulate_playback(&units, SimDuration::from_millis(prebuffer_ms));
        prop_assert_eq!(report.played + report.discarded, units.len() as u64);
        prop_assert!(report.stall_s >= 0.0);
        prop_assert!(report.avg_buffering_s >= 0.0);
        prop_assert!(report.stall_ratio >= 0.0);
    }

    #[test]
    fn bigger_prebuffer_never_stalls_more(
        delays_ms in proptest::collection::vec(0u64..3_000, 2..100),
    ) {
        let units: Vec<ArrivedUnit> = delays_ms
            .iter()
            .enumerate()
            .map(|(i, &d)| ArrivedUnit {
                media_ts_us: i as u64 * 40_000,
                duration_us: 40_000,
                arrival: SimTime::from_millis(i as u64 * 40 + d),
            })
            .collect();
        let small = simulate_playback(&units, SimDuration::ZERO);
        let big = simulate_playback(&units, SimDuration::from_secs(10));
        // A 10 s pre-buffer on a ≤3 s-jitter stream absorbs everything.
        prop_assert!(big.stall_s <= small.stall_s + 1e-9);
    }

    #[test]
    fn cdf_quantiles_are_monotone_and_bounded(samples in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let cdf = Cdf::from_samples(samples.clone());
        let mut last = f64::NEG_INFINITY;
        for k in 0..=10 {
            let q = cdf.quantile(k as f64 / 10.0);
            prop_assert!(q >= last);
            last = q;
        }
        prop_assert_eq!(cdf.quantile(0.0), cdf.min().unwrap());
        prop_assert_eq!(cdf.quantile(1.0), cdf.max().unwrap());
        for &s in &samples {
            let f = cdf.fraction_at_or_below(s);
            prop_assert!(f > 0.0 && f <= 1.0);
        }
    }

    #[test]
    fn stream_urls_roundtrip(dc in 0u16..31, bcast in any::<u64>(), rtmp in any::<bool>()) {
        let url = StreamUrl {
            scheme: if rtmp { Scheme::Rtmp } else { Scheme::Hls },
            dc,
            broadcast_id: bcast,
        };
        let parsed: StreamUrl = url.to_string().parse().unwrap();
        prop_assert_eq!(parsed, url);
    }

    #[test]
    fn sha256_matches_incremental_arbitrary_splits(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512,
    ) {
        let split = split.min(data.len());
        let oneshot = livescope_security::sha256::digest(&data);
        let mut h = livescope_security::sha256::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn overlay_tree_invariants_under_any_join_leave_sequence(
        ops in proptest::collection::vec((any::<bool>(), 0u64..40, 0usize..8), 1..120),
    ) {
        use livescope_overlay::{Hierarchy, MulticastTree};
        use livescope_net::datacenters::DatacenterId;
        let spots = [
            (40.71, -74.01), (34.05, -118.24), (51.51, -0.13), (48.86, 2.35),
            (35.68, 139.65), (1.35, 103.82), (-33.87, 151.21), (25.76, -80.19),
        ];
        let mut tree = MulticastTree::new(DatacenterId(0), Hierarchy::new());
        let mut joined = std::collections::BTreeSet::new();
        for (join, viewer, spot) in ops {
            if join && !joined.contains(&viewer) {
                let (lat, lon) = spots[spot];
                let leaf = Hierarchy::nearest_leaf(
                    &livescope_net::geo::GeoPoint::new(lat, lon),
                );
                tree.join(viewer, leaf);
                joined.insert(viewer);
            } else if !join {
                let existed = tree.leave(viewer);
                prop_assert_eq!(existed, joined.remove(&viewer));
            }
        }
        prop_assert_eq!(tree.viewer_count(), joined.len());
        // Tree shape: every edge child is unique (single parent), the
        // root never exceeds gateway fan-out, state is bounded.
        let edges = tree.edges();
        let mut children: Vec<_> = edges.iter().map(|&(_, c)| c).collect();
        let n = children.len();
        children.sort();
        children.dedup();
        prop_assert_eq!(children.len(), n);
        prop_assert!(tree.root_degree() <= 4);
        prop_assert!(tree.active_servers() <= 24);
        // Empty tree collapses back to just the root.
        if joined.is_empty() {
            prop_assert_eq!(tree.active_servers(), 1);
        }
    }

    #[test]
    fn scheduler_fires_all_events_in_time_order(
        times in proptest::collection::vec(0u64..100_000, 1..200),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        use livescope_sim::{Scheduler, SimTime};
        let mut sched: Scheduler<Vec<(u64, usize)>> = Scheduler::new();
        let mut expected = Vec::new();
        let mut ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            let id = sched.schedule_at(SimTime::from_micros(t), move |sched, log: &mut Vec<(u64, usize)>| {
                log.push((sched.now().as_micros(), i));
            });
            ids.push(id);
        }
        let mut cancelled = std::collections::HashSet::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                sched.cancel(*id);
                cancelled.insert(i);
            }
        }
        for (i, &t) in times.iter().enumerate() {
            if !cancelled.contains(&i) {
                expected.push((t, i));
            }
        }
        // Stable by (time, insertion order) — the determinism contract.
        expected.sort_by_key(|&(t, i)| (t, i));
        let mut log = Vec::new();
        sched.run(&mut log);
        prop_assert_eq!(log, expected);
    }

    #[test]
    fn rtmps_channel_roundtrips_and_rejects_any_bitflip(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..64), 1..12),
        flip_at in any::<usize>(),
    ) {
        use livescope_security::RtmpsChannel;
        let mut tx = RtmpsChannel::new(0xFACE);
        let mut rx = RtmpsChannel::new(0xFACE);
        let mut last_wire = None;
        for p in &payloads {
            let wire = tx.protect(p);
            last_wire = Some(wire.clone());
            prop_assert_eq!(&rx.open(wire).unwrap()[..], &p[..]);
        }
        if let Some(wire) = last_wire {
            let mut corrupted = wire.to_vec();
            let at = flip_at % corrupted.len();
            corrupted[at] ^= 0x01;
            // Either rejected as tampered, or (nonce byte flip) rejected
            // as replay/reorder — never accepted.
            prop_assert!(rx.open(bytes::Bytes::from(corrupted)).is_err());
        }
    }

    #[test]
    fn signatures_verify_only_the_signed_message(
        msg in proptest::collection::vec(any::<u8>(), 1..128),
        flip in 0usize..128,
    ) {
        use rand::SeedableRng;
        let keys = livescope_security::KeyPair::generate(
            &mut rand::rngs::SmallRng::seed_from_u64(1),
        );
        let sig = keys.sign(&msg);
        prop_assert!(keys.public().verify(&msg, &sig));
        let mut tampered = msg.clone();
        let at = flip % tampered.len();
        tampered[at] ^= 0x01;
        prop_assert!(!keys.public().verify(&tampered, &sig));
    }
}
