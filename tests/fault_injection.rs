//! Failure injection across the stack (smoltcp-style): lossy and
//! corrupting links, rate limiting, and adverse conditions must degrade
//! results gracefully — never panic, never wedge, always keep the
//! accounting consistent.

#![forbid(unsafe_code)]

use livescope_cdn::ids::UserId;
use livescope_client::playback::{simulate_playback, ArrivedUnit};
use livescope_net::geo::GeoPoint;
use livescope_net::{AccessLink, Delivery, FaultConfig, Link};
use livescope_proto::rtmp::RtmpMessage;
use livescope_sim::{SimDuration, SimTime};
use livescope_tests::{live_broadcast, test_cluster, test_frame, ucsb};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn lossy_link(drop: f64, corrupt: f64) -> Link {
    Link::device_path(
        &ucsb(),
        &GeoPoint::new(37.34, -121.89),
        AccessLink::StableWifi,
    )
    .with_faults(FaultConfig {
        drop_chance: drop,
        corrupt_chance: corrupt,
        ..FaultConfig::none()
    })
}

#[test]
fn playback_over_a_lossy_link_degrades_but_stays_consistent() {
    let mut rng = SmallRng::seed_from_u64(1);
    let mut link = lossy_link(0.15, 0.0);
    // 60 s of frames; ~15% never arrive.
    let mut units = Vec::new();
    for i in 0..1_500u64 {
        let sent = SimTime::from_millis(i * 40);
        if let Delivery::Arrives { delay, .. } = link.transmit(&mut rng, sent, 2_500) {
            units.push(ArrivedUnit {
                media_ts_us: i * 40_000,
                duration_us: 40_000,
                arrival: sent + delay,
            });
        }
    }
    let received = units.len() as f64 / 1_500.0;
    assert!((0.8..0.9).contains(&received), "delivery rate {received}");
    let report = simulate_playback(&units, SimDuration::from_secs(1));
    assert_eq!(report.played + report.discarded, units.len() as u64);
    // Lost units show as media discontinuities, not stalls, so the stream
    // still plays through.
    assert!(
        report.stall_ratio < 0.2,
        "stall ratio {}",
        report.stall_ratio
    );
}

#[test]
fn corrupted_frames_are_rejected_by_decode_not_by_panicking() {
    let mut rng = SmallRng::seed_from_u64(2);
    let mut link = lossy_link(0.0, 1.0);
    let wire = RtmpMessage::Frame(test_frame(1)).encode();
    let mut decoded_ok = 0;
    let mut rejected = 0;
    for i in 0..200u64 {
        match link.transmit(&mut rng, SimTime::from_millis(i), wire.len()) {
            Delivery::Arrives {
                corrupt_offset: Some(at),
                ..
            } => {
                let mut bytes = wire.to_vec();
                livescope_net::FaultInjector::apply_corruption(&mut bytes, at);
                match RtmpMessage::decode(bytes::Bytes::from(bytes)) {
                    Ok(_) => decoded_ok += 1, // payload-byte flip: undetectable without signatures
                    Err(_) => rejected += 1,
                }
            }
            Delivery::Arrives {
                corrupt_offset: None,
                ..
            } => decoded_ok += 1,
            Delivery::Lost => {}
        }
    }
    assert_eq!(decoded_ok + rejected, 200);
    assert!(
        rejected > 0,
        "header corruption must be caught by the codec"
    );
    assert!(
        decoded_ok > 0,
        "payload corruption passes the codec — which is why §7.2 needs signatures"
    );
}

#[test]
fn rate_limited_uplink_stalls_ingest_but_accounting_matches() {
    let mut cluster = test_cluster(20);
    let grant = live_broadcast(&mut cluster, UserId(1));
    cluster
        .join_viewer(SimTime::ZERO, grant.id, UserId(2), &ucsb())
        .unwrap();
    cluster
        .subscribe_rtmp(
            SimTime::ZERO,
            grant.id,
            UserId(2),
            &ucsb(),
            AccessLink::StableWifi,
        )
        .unwrap();
    // The viewer's link is shaped to 4 frames per 50 ms bucket.
    // (Installed by replacing the subscription with a shaped link.)
    cluster.wowza[grant.wowza_dc.0 as usize].unsubscribe(grant.id, UserId(2));
    cluster.wowza[grant.wowza_dc.0 as usize]
        .subscribe(
            grant.id,
            UserId(2),
            lossy_link(0.0, 0.0).with_faults(FaultConfig {
                rate_limit: Some(2),
                shaping_interval: SimDuration::from_millis(200),
                ..FaultConfig::none()
            }),
        )
        .unwrap();
    let mut delivered = 0;
    let mut dropped = 0;
    for i in 0..250u64 {
        let outcome = cluster
            .ingest_decoded(SimTime::from_millis(i * 40), grant.id, test_frame(i))
            .unwrap();
        match outcome.deliveries[0].delay {
            Some(_) => delivered += 1,
            None => dropped += 1,
        }
    }
    assert_eq!(delivered + dropped, 250);
    // 2 frames per 200 ms over 10 s ⇒ ~100 deliveries of 250 sent.
    assert!(
        (80..130).contains(&delivered),
        "rate limiter delivered {delivered}"
    );
}

#[test]
fn adverse_conditions_dont_break_the_hls_path() {
    // The smoltcp "good starting value": 15% drop + 15% corrupt on the
    // viewer's last mile. Chunk fetches retry (modelled as slow arrivals),
    // so the viewer still makes progress.
    let mut cluster = test_cluster(21);
    let mut rng = SmallRng::seed_from_u64(21);
    let grant = live_broadcast(&mut cluster, UserId(1));
    livescope_tests::stream_frames(&mut cluster, &grant, 750);
    let pop =
        livescope_net::datacenters::nearest(livescope_net::datacenters::Provider::Fastly, &ucsb())
            .id;
    let mut viewer = livescope_client::viewer::HlsViewer::new(
        UserId(9),
        grant.id,
        pop,
        &ucsb(),
        AccessLink::CongestedWifi,
    );
    for k in 0..25u64 {
        let now = livescope_tests::after_frames(750) + SimDuration::from_millis(k * 2_800);
        viewer.poll(&mut cluster, now, &mut rng);
    }
    // A post-stream joiner sees the 6-chunk live window; adverse network
    // conditions must not lose any of those.
    assert_eq!(
        viewer.receipts().len(),
        livescope_cdn::fastly::LIVE_WINDOW,
        "every advertised chunk eventually arrives"
    );
    let report = simulate_playback(&viewer.units(), SimDuration::from_secs(9));
    assert!(report.played > 0);
}

#[test]
fn fault_stats_add_up() {
    let mut rng = SmallRng::seed_from_u64(3);
    let mut link = lossy_link(0.3, 0.3);
    let n = 5_000;
    for i in 0..n {
        link.transmit(&mut rng, SimTime::from_millis(i), 100);
    }
    let (passed, dropped, corrupted, rate_limited) = link.fault_stats();
    assert_eq!(passed + dropped + corrupted + rate_limited, n);
    assert!(dropped > 0 && corrupted > 0);
}
