//! Shared helpers for the cross-crate integration tests.

#![forbid(unsafe_code)]

use livescope_cdn::control::CreateGrant;
use livescope_cdn::ids::UserId;
use livescope_cdn::Cluster;
use livescope_net::geo::GeoPoint;
use livescope_proto::rtmp::VideoFrame;
use livescope_sim::{RngPool, SimDuration, SimTime};

/// UCSB, where the paper's controlled experiments ran.
pub fn ucsb() -> GeoPoint {
    GeoPoint::new(34.41, -119.85)
}

/// A standard 3-second-chunk cluster with the production 100-slot cap.
pub fn test_cluster(seed: u64) -> Cluster {
    Cluster::new(&RngPool::new(seed), SimDuration::from_secs(3), 100)
}

/// Creates a broadcast at UCSB and connects its publisher.
pub fn live_broadcast(cluster: &mut Cluster, broadcaster: UserId) -> CreateGrant {
    let grant = cluster.create_broadcast(SimTime::ZERO, broadcaster, &ucsb());
    cluster
        .connect_publisher(SimTime::ZERO, grant.id, &grant.token)
        .expect("fresh broadcast accepts its publisher");
    grant
}

/// A deterministic test frame: 40 ms cadence, keyframe every 50th.
pub fn test_frame(seq: u64) -> VideoFrame {
    VideoFrame::new(
        seq,
        seq * 40_000,
        seq.is_multiple_of(50),
        bytes::Bytes::from(vec![1 + (seq % 250) as u8; 2_500]),
    )
}

/// Feeds `n` frames into a broadcast at real-time cadence; returns the
/// number of completed chunks.
pub fn stream_frames(cluster: &mut Cluster, grant: &CreateGrant, n: u64) -> usize {
    let mut chunks = 0;
    for i in 0..n {
        let now = SimTime::from_millis(i * 40);
        let outcome = cluster
            .ingest_decoded(now, grant.id, test_frame(i))
            .expect("publisher session live");
        chunks += outcome.completed_chunk.is_some() as usize;
    }
    chunks
}

/// The instant just after the `n`-th frame.
pub fn after_frames(n: u64) -> SimTime {
    SimTime::from_millis(n * 40) + SimDuration::from_millis(1)
}
