//! Integration sweep over every experiment: each one runs at reduced
//! scale and must reproduce its paper claim's *shape*. These are the
//! "does the whole reproduction hang together" tests; the per-module unit
//! tests cover the details.

#![forbid(unsafe_code)]

use livescope_core::{breakdown, buffering, geolocation, polling, scalability, social, usage};
use livescope_crawler::coverage;
use livescope_sim::SimDuration;

#[test]
fn fig11_hls_vs_rtmp_delay_gap() {
    let report = breakdown::run(&breakdown::BreakdownConfig {
        repetitions: 3,
        stream_secs: 40,
        ..breakdown::BreakdownConfig::default()
    });
    // The paper's headline numbers: RTMP ≈1.4 s, HLS ≈11.7 s.
    assert!(
        (0.5..3.0).contains(&report.rtmp.total_s()),
        "{:?}",
        report.rtmp
    );
    assert!(
        (8.0..15.0).contains(&report.hls.total_s()),
        "{:?}",
        report.hls
    );
    // Chunking ≈ chunk duration; buffering dominates; W2F is smallest.
    assert!((2.5..3.5).contains(&report.hls.chunking_s));
    let h = &report.hls;
    assert!(h.buffering_s > h.chunking_s && h.chunking_s > h.polling_s);
    assert!(h.polling_s > h.wowza2fastly_s && h.wowza2fastly_s > 0.0);
}

#[test]
fn fig12_13_polling_interval_beat_effect() {
    let report = polling::run(&polling::PollingConfig {
        broadcasts: 1_500,
        ..polling::PollingConfig::default()
    });
    let spread = |interval: f64| {
        let cdf = &report
            .mean_cdfs
            .iter()
            .find(|(i, _)| *i == interval)
            .unwrap()
            .1;
        cdf.quantile(0.9) - cdf.quantile(0.1)
    };
    assert!(spread(3.0) > 2.0 * spread(2.0));
    assert!(spread(3.0) > 2.0 * spread(4.0));
}

#[test]
fn fig14_rtmp_cost_dwarfs_hls_cost() {
    let report = scalability::run(&scalability::ScalabilityConfig {
        viewer_counts: vec![100, 500],
        stream_secs: 10,
        ..scalability::ScalabilityConfig::default()
    });
    assert!(
        report.peak_op_ratio() > 10.0,
        "ratio {}",
        report.peak_op_ratio()
    );
    // Gap widens from 100 to 500 viewers.
    let gap = |i: usize| report.rtmp[i].operations - report.hls[i].operations;
    assert!(gap(1) > 4 * gap(0));
}

#[test]
fn fig15_distance_ordering_and_gateway_gap() {
    let report = geolocation::run(&geolocation::GeolocationConfig {
        samples_per_pair: 10,
        ..geolocation::GeolocationConfig::default()
    });
    assert!(report.gateway_gap_s().unwrap() > 0.2);
    assert_eq!(report.buckets.len(), 5);
}

#[test]
fn fig17_six_second_buffer_matches_nine_at_lower_delay() {
    let report = buffering::run(&buffering::BufferingConfig {
        broadcasts: 300,
        ..buffering::BufferingConfig::default()
    });
    let p6 = report.hls_at(6.0).unwrap();
    let p9 = report.hls_at(9.0).unwrap();
    assert!(p6.stall_ratio.quantile(0.9) - p9.stall_ratio.quantile(0.9) < 0.03);
    let saving = p9.avg_buffering.median() - p6.avg_buffering.median();
    assert!((1.0..5.0).contains(&saving), "saving {saving}");
}

#[test]
fn table2_structure_contrasts() {
    let report = social::run_table2(&social::SocialConfig {
        periscope_nodes: 3_000,
        facebook_nodes: 2_500,
        twitter_nodes: 3_000,
        ..social::SocialConfig::default()
    });
    assert!(report.periscope.assortativity < 0.0);
    assert!(report.facebook.assortativity > 0.0);
    assert!(report.twitter.assortativity < report.periscope.assortativity);
    assert!(report.facebook.clustering > report.twitter.clustering);
}

#[test]
fn table1_and_growth_trends() {
    let config = usage::UsageConfig {
        periscope: livescope_workload::ScenarioConfig {
            days: 28,
            users: 3_000,
            base_daily_broadcasts: 50.0,
            android_launch_day: Some(7),
            ..livescope_workload::ScenarioConfig::periscope_study()
        },
        meerkat: livescope_workload::ScenarioConfig {
            days: 28,
            users: 900,
            base_daily_broadcasts: 40.0,
            ..livescope_workload::ScenarioConfig::meerkat_study()
        },
        ..usage::UsageConfig::default()
    };
    let report = usage::run(&config);
    // Growth/decline shapes.
    let trend = |ds: &livescope_crawler::DatasetSummary| {
        let head: u64 = ds.daily[..7].iter().map(|d| d.broadcasts).sum();
        let tail: u64 = ds.daily[21..].iter().map(|d| d.broadcasts).sum();
        tail as f64 / head.max(1) as f64
    };
    assert!(trend(&report.periscope) > 1.3);
    assert!(trend(&report.meerkat) < 1.0);
    // Table renders and the comment cap shows up as hearts >> comments.
    assert!(report.tab1().contains("Periscope"));
}

#[test]
fn crawler_calibration_half_second_suffices() {
    let fast = coverage::run_coverage(&coverage::CoverageConfig {
        accounts: 10,
        account_refresh: SimDuration::from_secs(5),
        horizon: SimDuration::from_secs(400),
        ..coverage::CoverageConfig::paper_production()
    });
    // Short horizon truncates discovery of broadcasts born at the very
    // end; 98%+ here corresponds to the paper's "exhaustive" at full span.
    assert!(fast.coverage > 0.98, "coverage {}", fast.coverage);
}

#[test]
fn experiment_determinism_across_the_suite() {
    // Same config ⇒ identical results for the two cheapest experiments
    // (the others assert determinism in their unit tests).
    let g1 = geolocation::run(&geolocation::GeolocationConfig::default());
    let g2 = geolocation::run(&geolocation::GeolocationConfig::default());
    assert_eq!(
        g1.bucket(livescope_net::geo::DistanceBucket::CoLocated)
            .unwrap()
            .median(),
        g2.bucket(livescope_net::geo::DistanceBucket::CoLocated)
            .unwrap()
            .median()
    );
    let p1 = polling::run(&polling::PollingConfig {
        broadcasts: 200,
        ..polling::PollingConfig::default()
    });
    let p2 = polling::run(&polling::PollingConfig {
        broadcasts: 200,
        ..polling::PollingConfig::default()
    });
    assert_eq!(p1.mean_cdfs[0].1.median(), p2.mean_cdfs[0].1.median());
}
