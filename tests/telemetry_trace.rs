//! Trace determinism and ledger cross-check for the breakdown experiment.
//!
//! Two properties the telemetry layer guarantees:
//!
//! 1. A JSONL trace is a pure function of `(config, seed)` — two runs
//!    produce byte-identical output, and tracing never perturbs the
//!    simulation itself (the NullSink run returns the same report).
//! 2. The six-component Fig 10 breakdown derived from the trace by
//!    [`TraceBreakdown`] agrees with the analytic numbers
//!    `experiments::breakdown` computes from its own in-memory state.

#![forbid(unsafe_code)]

use livescope_core::experiments::breakdown::{run, run_traced, BreakdownConfig, BreakdownReport};
use livescope_core::experiments::overlay_ext::{
    run as overlay_run, run_traced as overlay_run_traced, OverlayConfig,
};
use livescope_telemetry::event::parse_jsonl;
use livescope_telemetry::{SharedBuffer, Telemetry, TraceBreakdown};

fn quick() -> BreakdownConfig {
    BreakdownConfig {
        repetitions: 2,
        stream_secs: 40,
        ..BreakdownConfig::default()
    }
}

fn capture_trace(config: &BreakdownConfig) -> (Vec<u8>, BreakdownReport) {
    let buf = SharedBuffer::new();
    let telemetry = Telemetry::to_jsonl(Box::new(buf.clone()));
    let report = run_traced(config, &telemetry);
    telemetry.flush();
    (buf.contents(), report)
}

#[test]
fn same_config_and_seed_yield_byte_identical_traces() {
    let (a, _) = capture_trace(&quick());
    let (b, _) = capture_trace(&quick());
    assert!(!a.is_empty(), "trace must not be empty");
    assert_eq!(
        a, b,
        "same (config, seed) must reproduce the trace bit-for-bit"
    );
}

#[test]
fn different_seeds_yield_different_traces() {
    let (a, _) = capture_trace(&quick());
    let (b, _) = capture_trace(&BreakdownConfig {
        seed: 0xD1FF,
        ..quick()
    });
    assert_ne!(a, b, "the trace must actually depend on the seed");
}

#[test]
fn tracing_does_not_perturb_the_experiment() {
    let plain = run(&quick());
    let (_, traced) = capture_trace(&quick());
    assert_eq!(plain.rtmp, traced.rtmp);
    assert_eq!(plain.hls, traced.hls);
}

#[test]
fn trace_derived_breakdown_matches_analytic_report() {
    let (bytes, report) = capture_trace(&quick());
    let text = std::str::from_utf8(&bytes).expect("trace is UTF-8");
    let events = parse_jsonl(text).expect("trace parses back");
    let derived = TraceBreakdown::derive(&events);

    assert_eq!(
        derived.unmatched_chunks, 0,
        "every delivered chunk has a ChunkCompleted"
    );
    assert!(derived.rtmp_units > 0);
    assert!(derived.hls_chunks > 0);

    // The analytic report averages per repetition while the ledger
    // averages per unit; with equal-length repetitions the two only differ
    // by per-rep unit-count jitter, so a modest absolute tolerance holds.
    let tol = 0.25;
    let checks = [
        ("rtmp upload", derived.rtmp.upload_s, report.rtmp.upload_s),
        (
            "rtmp last-mile",
            derived.rtmp.last_mile_s,
            report.rtmp.last_mile_s,
        ),
        (
            "rtmp buffering",
            derived.rtmp.buffering_s,
            report.rtmp.buffering_s,
        ),
        ("hls upload", derived.hls.upload_s, report.hls.upload_s),
        (
            "hls chunking",
            derived.hls.chunking_s,
            report.hls.chunking_s,
        ),
        (
            "hls wowza2fastly",
            derived.hls.wowza2fastly_s,
            report.hls.wowza2fastly_s,
        ),
        ("hls polling", derived.hls.polling_s, report.hls.polling_s),
        (
            "hls last-mile",
            derived.hls.last_mile_s,
            report.hls.last_mile_s,
        ),
        (
            "hls buffering",
            derived.hls.buffering_s,
            report.hls.buffering_s,
        ),
    ];
    for (name, got, want) in checks {
        assert!(
            (got - want).abs() < tol,
            "{name}: trace-derived {got:.4} vs analytic {want:.4}"
        );
    }
    // RTMP never touches the chunk path; the trace must agree exactly.
    assert_eq!(derived.rtmp.chunking_s, 0.0);
    assert_eq!(derived.rtmp.wowza2fastly_s, 0.0);
    assert_eq!(derived.rtmp.polling_s, 0.0);
}

#[test]
fn determinism_sweep_covers_breakdown_and_overlay_experiments() {
    // The dynamic counterpart of detlint's static pass: two experiments
    // on different code paths (CDN breakdown, §8 overlay multicast) each
    // run twice at a fixed seed and must reproduce their traces
    // byte-for-byte.
    let (breakdown_a, _) = capture_trace(&quick());
    let (breakdown_b, _) = capture_trace(&quick());
    assert!(!breakdown_a.is_empty());
    assert_eq!(
        breakdown_a, breakdown_b,
        "breakdown trace drifted between runs"
    );

    let overlay_config = OverlayConfig {
        audiences: vec![100, 500],
        frames: 40,
        ..OverlayConfig::default()
    };
    let capture_overlay = || {
        let buf = SharedBuffer::new();
        let telemetry = Telemetry::to_jsonl(Box::new(buf.clone()));
        let report = overlay_run_traced(&overlay_config, &telemetry);
        telemetry.flush();
        (buf.contents(), report)
    };
    let (overlay_a, report_a) = capture_overlay();
    let (overlay_b, report_b) = capture_overlay();
    assert!(!overlay_a.is_empty(), "overlay trace must not be empty");
    assert_eq!(overlay_a, overlay_b, "overlay trace drifted between runs");
    assert_eq!(report_a.overlay.len(), report_b.overlay.len());

    // The overlay trace parses back and carries one frame event per
    // pushed frame, per audience.
    let text = std::str::from_utf8(&overlay_a).expect("trace is UTF-8");
    let events = parse_jsonl(text).expect("overlay trace parses back");
    let frame_events = events
        .iter()
        .filter(|e| e.event.kind() == "overlay_frame_delivered")
        .count() as u64;
    assert_eq!(
        frame_events,
        overlay_config.frames * overlay_config.audiences.len() as u64
    );

    // Tracing must not perturb the overlay experiment either.
    let plain = overlay_run(&overlay_config);
    for (t, p) in report_a.overlay.iter().zip(plain.overlay.iter()) {
        assert_eq!(t.audience, p.audience);
        assert!((t.origin_sends_per_frame - p.origin_sends_per_frame).abs() < 1e-12);
        assert!((t.mean_delay_s - p.mean_delay_s).abs() < 1e-12);
    }
}

#[test]
fn memory_sink_records_metrics_alongside_events() {
    let telemetry = Telemetry::recording(4096);
    let _ = run_traced(&quick(), &telemetry);
    let snapshot = telemetry.snapshot();
    for name in [
        "wowza.frames_in",
        "wowza.chunks_built",
        "fastly.polls_served",
        "fastly.origin_fetches",
        "control.broadcasts_created",
        "control.joins_rtmp",
        "client.rtmp_units_received",
        "client.hls_chunks_received",
        "crawler.probe_polls",
    ] {
        assert!(
            snapshot.counter(name).is_some_and(|v| v > 0),
            "counter {name} should be live: {:?}",
            snapshot.counter(name)
        );
    }
}
