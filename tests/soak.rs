//! Soak test: drive the full delivery system with a workload-generator
//! day — hundreds of broadcasts, thousands of joins, live ingest and
//! polling — and check global invariants at the end. This is the "would a
//! downstream user's service survive a day of traffic" test.

#![forbid(unsafe_code)]

use livescope_cdn::ids::{BroadcastId, UserId};
use livescope_cdn::Cluster;
use livescope_net::geo::GeoPoint;
use livescope_sim::process::{Tick, Ticker};
use livescope_sim::{RngPool, Scheduler, SimDuration, SimTime};
use livescope_workload::{generate, ScenarioConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct SoakWorld {
    cluster: Cluster,
    rng: SmallRng,
    frames_ingested: u64,
    chunks_completed: u64,
    polls: u64,
    joins: u64,
    live_tokens: std::collections::HashMap<BroadcastId, String>,
}

#[test]
fn a_day_of_workload_runs_clean_through_the_cluster() {
    // 1. Ground truth from the workload generator: one scaled day.
    let scenario = ScenarioConfig {
        days: 1,
        users: 800,
        base_daily_broadcasts: 120.0,
        ..ScenarioConfig::periscope_study()
    };
    let workload = generate(&scenario);
    let broadcasts = &workload.broadcasts;
    assert!(
        broadcasts.len() >= 60,
        "day too quiet: {}",
        broadcasts.len()
    );

    // 2. Replay it against the real cluster inside the event scheduler.
    //    Each broadcast: create → connect → ingest at 1 frame/s (reduced
    //    rate to keep the soak fast; mechanisms are rate-independent) →
    //    a few HLS polls → end.
    let pool = RngPool::new(0x50AC);
    let mut sched: Scheduler<SoakWorld> = Scheduler::new();
    let mut world = SoakWorld {
        cluster: Cluster::new(&pool, SimDuration::from_secs(3), 100),
        rng: SmallRng::seed_from_u64(pool.stream_seed("drive")),
        frames_ingested: 0,
        chunks_completed: 0,
        polls: 0,
        joins: 0,
        live_tokens: std::collections::HashMap::new(),
    };

    for record in broadcasts.iter().take(150) {
        let start = record.start;
        let duration = record.duration.min(SimDuration::from_secs(120));
        let broadcaster = UserId(record.broadcaster as u64 + 1_000_000);
        let audience = record.viewers.min(25);
        sched.schedule_at(start, move |sched, world: &mut SoakWorld| {
            let location = GeoPoint::new(
                world.rng.gen_range(-50.0..60.0),
                world.rng.gen_range(-120.0..140.0),
            );
            let grant = world
                .cluster
                .create_broadcast(sched.now(), broadcaster, &location);
            world
                .cluster
                .connect_publisher(sched.now(), grant.id, &grant.token)
                .expect("fresh broadcast");
            world.live_tokens.insert(grant.id, grant.token.clone());
            let id = grant.id;
            // Viewers join over the first seconds.
            for v in 0..audience {
                let delay = SimDuration::from_millis(world.rng.gen_range(0..5_000));
                sched.schedule_in(delay, move |sched, world: &mut SoakWorld| {
                    let loc = GeoPoint::new(
                        world.rng.gen_range(-50.0..60.0),
                        world.rng.gen_range(-120.0..140.0),
                    );
                    if world
                        .cluster
                        .join_viewer(sched.now(), id, UserId(v + 2_000_000), &loc)
                        .is_ok()
                    {
                        world.joins += 1;
                        let _ = sched;
                    }
                });
            }
            // Ingest ticker: one frame per second until the end.
            let frames = duration.as_secs_f64() as u64;
            let mut i = 0u64;
            Ticker::spawn(
                sched,
                sched.now(),
                SimDuration::from_secs(1),
                move |sched, world: &mut SoakWorld| {
                    if i >= frames || !world.live_tokens.contains_key(&id) {
                        return Tick::Stop;
                    }
                    let frame = livescope_proto::rtmp::VideoFrame::new(
                        i,
                        i * 1_000_000,
                        i.is_multiple_of(3),
                        bytes::Bytes::from(vec![3u8; 1_200]),
                    );
                    let outcome = world
                        .cluster
                        .ingest_decoded(sched.now(), id, frame)
                        .expect("live session ingests");
                    world.frames_ingested += 1;
                    world.chunks_completed += outcome.completed_chunk.is_some() as u64;
                    i += 1;
                    Tick::Again
                },
            );
            // One HLS poller per broadcast.
            Ticker::spawn(
                sched,
                sched.now() + SimDuration::from_secs(4),
                SimDuration::from_millis(2_800),
                move |sched, world: &mut SoakWorld| {
                    if !world.live_tokens.contains_key(&id) {
                        return Tick::Stop;
                    }
                    let pop =
                        livescope_net::datacenters::DatacenterId(8 + (world.polls % 23) as u16);
                    if world.cluster.poll_hls(sched.now(), id, pop).is_ok() {
                        world.polls += 1;
                    }
                    Tick::Again
                },
            );
            // Schedule the end.
            sched.schedule_in(duration, move |sched, world: &mut SoakWorld| {
                if let Some(token) = world.live_tokens.remove(&id) {
                    world
                        .cluster
                        .end_broadcast(sched.now(), id, &token)
                        .expect("live broadcast ends once");
                }
            });
        });
    }

    let horizon = SimTime::from_secs(90_000);
    sched.run_until(horizon, &mut world);

    // 3. Invariants.
    assert_eq!(
        world.cluster.control.live_count(),
        0,
        "every broadcast must have ended"
    );
    assert!(
        world.frames_ingested > 3_000,
        "ingested {}",
        world.frames_ingested
    );
    assert!(
        world.chunks_completed > 500,
        "chunks {}",
        world.chunks_completed
    );
    assert!(world.polls > 500, "polls {}", world.polls);
    assert!(world.joins > 200, "joins {}", world.joins);
    // Work accounting is consistent across the ingest fleet.
    let total_frames: u64 = world.cluster.wowza.iter().map(|w| w.work.frames_in).sum();
    assert_eq!(total_frames, world.frames_ingested);
    let total_chunks: u64 = world
        .cluster
        .wowza
        .iter()
        .map(|w| w.work.chunks_built)
        .sum();
    assert!(
        total_chunks >= world.chunks_completed,
        "flushes may add chunks"
    );
    // The scheduler drained everything we scheduled.
    assert_eq!(sched.pending(), 0, "events left in the queue");
}
