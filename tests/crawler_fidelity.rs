//! Crawler fidelity: the measured dataset must faithfully reflect ground
//! truth up to the documented losses, and coverage must improve
//! monotonically with crawl rate.

#![forbid(unsafe_code)]

use livescope_crawler::campaign::{run_campaign, CampaignConfig};
use livescope_crawler::coverage::{run_coverage, CoverageConfig};
use livescope_sim::SimDuration;
use livescope_workload::{generate, ScenarioConfig};

fn workload() -> livescope_workload::Workload {
    generate(&ScenarioConfig {
        days: 14,
        users: 1_500,
        base_daily_broadcasts: 60.0,
        ..ScenarioConfig::periscope_study()
    })
}

#[test]
fn dataset_equals_ground_truth_without_outage() {
    let w = workload();
    let d = run_campaign(&w, &CampaignConfig::meerkat_study());
    assert_eq!(d.broadcasts(), w.total_broadcasts());
    assert_eq!(d.total_views(), w.total_views());
    assert_eq!(d.mobile_views(), w.mobile_views());
    assert_eq!(d.unique_viewers(), w.unique_viewers());
    assert_eq!(d.broadcasters(), w.unique_broadcasters());
    assert_eq!(d.missed, 0);
}

#[test]
fn outage_loss_is_confined_to_the_window_and_documented() {
    let w = workload();
    let config = CampaignConfig {
        outage_days: Some((5, 7)),
        outage_loss: 0.8,
        ..CampaignConfig::periscope_study()
    };
    let d = run_campaign(&w, &config);
    // Outside the window: byte-for-byte complete.
    for day in (0..14u32).filter(|d| !(5..=7).contains(d)) {
        let truth = w.broadcasts.iter().filter(|b| b.day == day).count();
        let measured = d.records.iter().filter(|r| r.record.day == day).count();
        assert_eq!(truth, measured, "day {day}");
    }
    // Inside: losses accounted.
    assert_eq!(d.broadcasts() + d.missed, w.total_broadcasts());
    let truth_in_window = w
        .broadcasts
        .iter()
        .filter(|b| (5..=7).contains(&b.day))
        .count() as f64;
    assert!((d.loss_fraction(w.total_broadcasts()) > 0.0));
    let window_loss = d.missed as f64 / truth_in_window;
    assert!((window_loss - 0.8).abs() < 0.1, "window loss {window_loss}");
}

#[test]
fn anonymization_preserves_linkage_but_not_identity() {
    let w = workload();
    let d = run_campaign(&w, &CampaignConfig::periscope_study());
    // Same broadcaster ⇒ same hash (longitudinal linkage survives).
    use std::collections::HashMap;
    let mut seen: HashMap<u32, u64> = HashMap::new();
    for r in &d.records {
        let entry = seen
            .entry(r.record.broadcaster)
            .or_insert(r.broadcaster_hash);
        assert_eq!(*entry, r.broadcaster_hash, "hash must be stable per user");
    }
    // Distinct broadcasters ⇒ distinct hashes (no collisions at this scale).
    let mut hashes: Vec<u64> = seen.values().copied().collect();
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(hashes.len(), seen.len());
}

#[test]
fn coverage_rises_monotonically_with_crawl_rate() {
    let coverage_at = |accounts: usize| {
        run_coverage(&CoverageConfig {
            accounts,
            account_refresh: SimDuration::from_secs(60),
            arrivals_per_sec: 1.5,
            duration_median_s: 60.0,
            duration_sigma: 0.8,
            horizon: SimDuration::from_secs(500),
            seed: 99,
        })
        .coverage
    };
    let slow = coverage_at(1);
    let medium = coverage_at(6);
    let fast = coverage_at(60);
    assert!(slow < medium + 0.02, "slow {slow} vs medium {medium}");
    assert!(medium <= fast + 0.01, "medium {medium} vs fast {fast}");
    assert!(fast > 0.98, "fast crawler should see everything: {fast}");
    assert!(
        slow < 0.9,
        "a 60s single crawler should miss plenty: {slow}"
    );
}

#[test]
fn discovery_latency_scales_with_effective_refresh() {
    let latency_at = |accounts: usize| {
        run_coverage(&CoverageConfig {
            accounts,
            account_refresh: SimDuration::from_secs(20),
            arrivals_per_sec: 1.0,
            duration_median_s: 300.0,
            duration_sigma: 0.5,
            horizon: SimDuration::from_secs(600),
            seed: 5,
        })
        .mean_discovery_latency_s
    };
    let one = latency_at(1); // effective 20 s
    let twenty = latency_at(20); // effective 1 s
    assert!(
        one > 3.0 * twenty,
        "latency should scale with refresh: {one} vs {twenty}"
    );
}
