//! End-to-end integration: the full broadcast lifecycle across control
//! plane, ingest, edge, message bus and clients.

#![forbid(unsafe_code)]

use livescope_cdn::ids::UserId;
use livescope_client::viewer::HlsViewer;
use livescope_net::datacenters::{self, DatacenterId, Provider};
use livescope_net::AccessLink;
use livescope_proto::message::{ChatEvent, EventKind};
use livescope_sim::{SimDuration, SimTime};
use livescope_tests::{after_frames, live_broadcast, stream_frames, test_cluster, ucsb};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn hundredth_viewer_gets_rtmp_and_the_next_is_handed_to_hls() {
    let mut cluster = test_cluster(1);
    let grant = live_broadcast(&mut cluster, UserId(1));
    for v in 0..100 {
        let g = cluster
            .join_viewer(SimTime::ZERO, grant.id, UserId(1000 + v), &ucsb())
            .unwrap();
        assert!(g.rtmp.is_some(), "viewer {v} should get RTMP");
        assert!(g.can_comment);
    }
    let g101 = cluster
        .join_viewer(SimTime::ZERO, grant.id, UserId(2000), &ucsb())
        .unwrap();
    assert!(g101.rtmp.is_none(), "101st viewer goes to HLS");
    assert!(!g101.can_comment, "comment rights end with the RTMP slots");
    let state = cluster.control.broadcast(grant.id).unwrap();
    assert_eq!(state.rtmp_viewers, 100);
    assert_eq!(state.hls_viewers, 1);
}

#[test]
fn frames_pushed_to_rtmp_subscribers_arrive_in_order_with_positive_delay() {
    let mut cluster = test_cluster(2);
    let grant = live_broadcast(&mut cluster, UserId(1));
    cluster
        .join_viewer(SimTime::ZERO, grant.id, UserId(5), &ucsb())
        .unwrap();
    cluster
        .subscribe_rtmp(
            SimTime::ZERO,
            grant.id,
            UserId(5),
            &ucsb(),
            AccessLink::StableWifi,
        )
        .unwrap();
    let mut last_seq = None;
    for i in 0..200u64 {
        let now = SimTime::from_millis(i * 40);
        let outcome = cluster
            .ingest_decoded(now, grant.id, livescope_tests::test_frame(i))
            .unwrap();
        assert_eq!(outcome.deliveries.len(), 1);
        let d = &outcome.deliveries[0];
        assert!(d.delay.expect("clean link delivers") > SimDuration::ZERO);
        let frame = match livescope_proto::rtmp::RtmpMessage::decode(d.wire.clone()).unwrap() {
            livescope_proto::rtmp::RtmpMessage::Frame(f) => f,
            other => panic!("{other:?}"),
        };
        assert_eq!(Some(frame.meta.sequence), Some(i));
        if let Some(prev) = last_seq {
            assert_eq!(frame.meta.sequence, prev + 1);
        }
        last_seq = Some(frame.meta.sequence);
    }
}

#[test]
fn hls_chunks_flow_origin_to_pop_to_viewer_and_play_smoothly() {
    let mut cluster = test_cluster(3);
    let mut rng = SmallRng::seed_from_u64(3);
    let grant = live_broadcast(&mut cluster, UserId(1));
    let pop = datacenters::nearest(Provider::Fastly, &ucsb()).id;
    let mut viewer = HlsViewer::new(UserId(9), grant.id, pop, &ucsb(), AccessLink::StableWifi);
    // Watch live: interleave 30 s of ingest with 2.8 s polls, plus a tail
    // so the final chunk lands (late joiners only see the 6-chunk live
    // window, so polling must track the stream).
    let mut next_poll = SimTime::ZERO;
    let mut chunks = 0;
    for i in 0..750u64 {
        let now = SimTime::from_millis(i * 40);
        while next_poll <= now {
            viewer.poll(&mut cluster, next_poll, &mut rng);
            next_poll += SimDuration::from_millis(2_800);
        }
        chunks += cluster
            .ingest_decoded(now, grant.id, livescope_tests::test_frame(i))
            .unwrap()
            .completed_chunk
            .is_some() as usize;
    }
    assert_eq!(chunks, 9);
    for k in 0..4u64 {
        let now = after_frames(750) + SimDuration::from_millis(k * 2_800);
        viewer.poll(&mut cluster, now, &mut rng);
    }
    assert_eq!(viewer.receipts().len(), 9, "all chunks reach the viewer");
    let units = viewer.units();
    let report = livescope_client::playback::simulate_playback(&units, SimDuration::from_secs(9));
    assert_eq!(report.played + report.discarded, 9);
    assert_eq!(report.discarded, 0);
}

#[test]
fn ending_a_broadcast_tears_everything_down() {
    let mut cluster = test_cluster(4);
    let grant = live_broadcast(&mut cluster, UserId(1));
    stream_frames(&mut cluster, &grant, 100);
    let pop = DatacenterId(8);
    cluster.poll_hls(after_frames(100), grant.id, pop).unwrap();
    cluster
        .end_broadcast(after_frames(101), grant.id, &grant.token)
        .unwrap();
    assert_eq!(cluster.control.live_count(), 0);
    // Joins are refused, the edge cache is gone.
    assert!(cluster
        .join_viewer(after_frames(102), grant.id, UserId(7), &ucsb())
        .is_err());
    assert!(cluster.fastly[0].availability(grant.id, 0).is_none());
    // Ingest is refused after teardown.
    assert!(cluster
        .ingest_decoded(
            after_frames(102),
            grant.id,
            livescope_tests::test_frame(101)
        )
        .is_err());
}

#[test]
fn hearts_fan_out_to_all_channel_subscribers() {
    let mut cluster = test_cluster(5);
    let grant = live_broadcast(&mut cluster, UserId(1));
    for v in 0..25u64 {
        let link = livescope_net::Link::device_path(
            &ucsb(),
            &datacenters::datacenter(grant.wowza_dc).location,
            AccessLink::StableWifi,
        );
        cluster.pubnub.subscribe(grant.id, UserId(100 + v), link);
    }
    let deliveries = cluster.publish_chat(
        SimTime::from_secs(5),
        ChatEvent {
            broadcast_id: grant.id.0,
            user_id: 101,
            ts_us: 5_000_000,
            kind: EventKind::Heart,
        },
    );
    assert_eq!(deliveries.len(), 25);
    assert!(deliveries.iter().filter(|d| d.delay.is_some()).count() >= 24);
}

#[test]
fn two_identically_seeded_clusters_evolve_identically() {
    let run = |seed| {
        let mut cluster = test_cluster(seed);
        let grant = live_broadcast(&mut cluster, UserId(1));
        cluster
            .join_viewer(SimTime::ZERO, grant.id, UserId(2), &ucsb())
            .unwrap();
        cluster
            .subscribe_rtmp(
                SimTime::ZERO,
                grant.id,
                UserId(2),
                &ucsb(),
                AccessLink::StableWifi,
            )
            .unwrap();
        let mut delays = Vec::new();
        for i in 0..100u64 {
            let outcome = cluster
                .ingest_decoded(
                    SimTime::from_millis(i * 40),
                    grant.id,
                    livescope_tests::test_frame(i),
                )
                .unwrap();
            delays.push(outcome.deliveries[0].delay);
        }
        (grant.token.clone(), delays)
    };
    let (tok_a, delays_a) = run(77);
    let (tok_b, delays_b) = run(77);
    let (tok_c, delays_c) = run(78);
    assert_eq!(tok_a, tok_b);
    assert_eq!(delays_a, delays_b);
    assert!(tok_a != tok_c || delays_a != delays_c);
}

#[test]
fn broadcasters_land_on_their_nearest_wowza_site() {
    let mut cluster = test_cluster(6);
    for (city, lat, lon, expected) in [
        ("SF", 37.77, -122.42, "San Jose"),
        ("NYC", 40.71, -74.01, "Ashburn"),
        ("Berlin", 52.52, 13.40, "Frankfurt"),
        ("Osaka", 34.69, 135.50, "Tokyo"),
        ("Rio", -22.91, -43.17, "Sao Paulo"),
    ] {
        let grant = cluster.create_broadcast(
            SimTime::ZERO,
            UserId(1),
            &livescope_net::geo::GeoPoint::new(lat, lon),
        );
        assert_eq!(
            datacenters::datacenter(grant.wowza_dc).city,
            expected,
            "{city} broadcaster"
        );
    }
}
