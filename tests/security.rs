//! Security integration: the §7 attack surface exercised through public
//! APIs only — token secrecy, replay, tampering, and the defense.

#![forbid(unsafe_code)]

use bytes::Bytes;
use livescope_cdn::ids::UserId;
use livescope_cdn::wowza::IngestError;
use livescope_cdn::CdnError;
use livescope_core::security::{run, AttackSide, SecurityConfig};
use livescope_proto::control::{ControlResponse, Scheme, Sealed, StreamUrl};
use livescope_proto::rtmp::{Role, RtmpMessage};
use livescope_security::{Interceptor, SigningPolicy};
use livescope_sim::SimTime;
use livescope_tests::{live_broadcast, test_cluster};

#[test]
fn token_is_invisible_on_the_control_channel_but_leaks_on_rtmp() {
    let token = "super-secret-broadcast-token".to_string();
    let created = ControlResponse::Created {
        broadcast_id: 7,
        token: token.clone(),
        rtmp_url: StreamUrl {
            scheme: Scheme::Rtmp,
            dc: 0,
            broadcast_id: 7,
        },
        hls_url: StreamUrl {
            scheme: Scheme::Hls,
            dc: 9,
            broadcast_id: 7,
        },
    };
    // Control plane: sealed — the token is not findable in the ciphertext.
    let sealed = Sealed::seal(&created.encode(), 0xFEED, 1);
    let needle = token.as_bytes();
    assert!(
        !sealed.wire().windows(needle.len()).any(|w| w == needle),
        "control channel leaked the token"
    );
    // RTMP connect: plaintext — the same token is right there.
    let connect = RtmpMessage::Connect {
        token: token.clone(),
        role: Role::Publisher,
        user_id: 1,
    }
    .encode();
    assert!(connect.windows(needle.len()).any(|w| w == needle));
}

#[test]
fn stolen_token_cannot_double_publish_a_live_broadcast() {
    // The attacker harvested the token; trying to hijack the *session*
    // (connect as a second publisher) is refused while the victim is live.
    let mut cluster = test_cluster(11);
    let grant = live_broadcast(&mut cluster, UserId(1));
    let mut mitm = Interceptor::blackout();
    let connect = RtmpMessage::Connect {
        token: grant.token.clone(),
        role: Role::Publisher,
        user_id: 1,
    };
    mitm.process_rtmp(connect.encode());
    let stolen = mitm.stolen_tokens[0].clone();
    assert_eq!(stolen, grant.token);
    assert_eq!(
        cluster.connect_publisher(SimTime::ZERO, grant.id, &stolen),
        Err(CdnError::Ingest(IngestError::AlreadyPublishing))
    );
}

#[test]
fn tampered_wire_frames_flow_through_ingest_untouched_when_undefended() {
    let mut cluster = test_cluster(12);
    let grant = live_broadcast(&mut cluster, UserId(1));
    let mut mitm = Interceptor::blackout();
    let frame = livescope_tests::test_frame(0);
    let (tampered, _) = mitm.process_rtmp(RtmpMessage::Frame(frame).encode());
    // The server accepts the rewritten frame — that is the vulnerability.
    let outcome = cluster
        .ingest_frame(livescope_sim::SimTime::ZERO, grant.id, tampered)
        .expect("unauthenticated ingest accepts tampered frames");
    assert!(outcome.deliveries.is_empty()); // no subscribers yet, but accepted
    let origin = cluster.wowza[grant.wowza_dc.0 as usize].origin_chunks(grant.id);
    assert!(origin.is_empty()); // chunk not closed yet — frame is buffered
}

#[test]
fn corrupting_one_wire_byte_is_rejected_not_crashing() {
    let mut cluster = test_cluster(13);
    let grant = live_broadcast(&mut cluster, UserId(1));
    let wire = RtmpMessage::Frame(livescope_tests::test_frame(0)).encode();
    for position in 0..wire.len() {
        let mut corrupted = wire.to_vec();
        corrupted[position] ^= 0xFF;
        // Must never panic; may error or (payload-byte flips) be accepted.
        let _ = cluster.ingest_frame(
            livescope_sim::SimTime::ZERO,
            grant.id,
            Bytes::from(corrupted),
        );
    }
}

#[test]
fn the_full_attack_matrix_matches_the_paper() {
    for side in [AttackSide::Broadcaster, AttackSide::Viewer] {
        let undefended = run(
            &SecurityConfig {
                side,
                frames: 120,
                ..SecurityConfig::default()
            },
            false,
        );
        assert!(undefended.attack_succeeded(), "{side:?} undefended");
        let defended = run(
            &SecurityConfig {
                side,
                frames: 120,
                ..SecurityConfig::default()
            },
            true,
        );
        assert!(!defended.attack_succeeded(), "{side:?} defended");
    }
}

#[test]
fn signing_policy_cost_ladder_holds_end_to_end() {
    let cost = |policy| {
        run(
            &SecurityConfig {
                side: AttackSide::Viewer,
                policy,
                frames: 200,
                ..SecurityConfig::default()
            },
            true,
        )
        .signatures_produced
    };
    let every = cost(SigningPolicy::EveryFrame);
    let tenth = cost(SigningPolicy::EveryKth(10));
    let chain = cost(SigningPolicy::HashChain(10));
    assert_eq!(every, 200);
    assert_eq!(tenth, 20);
    assert_eq!(chain, 20);
}

#[test]
fn sealed_channel_rejects_replayed_cross_session_envelopes() {
    // An envelope sealed for session key A cannot be replayed into a
    // session keyed B — the integrity check binds key and nonce.
    let envelope = Sealed::seal(b"join grant", 0xAAAA, 5);
    assert!(envelope.unseal(0xBBBB).is_err());
    // Same key, different observed nonce state is fine (nonce travels in
    // the envelope) — replay protection above this layer would use the
    // nonce; we assert it is at least visible for that purpose.
    assert!(envelope.unseal(0xAAAA).is_ok());
}
