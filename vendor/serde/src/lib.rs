//! Offline vendored subset of the `serde` data model.
//!
//! Unlike upstream serde's visitor architecture, this vendored copy is
//! JSON-centric: [`Serialize`] lowers a value into the in-memory [`Value`]
//! tree and [`Deserialize`] lifts it back. `serde_json` (the only format in
//! the workspace) renders and parses that tree. The derive macro in
//! `serde_derive` targets these traits.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// In-memory JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Field order is preserved so serialized output is deterministic and
    /// matches struct declaration order.
    Object(Vec<(String, Value)>),
}

/// A JSON number. Integers are kept exact (JSON has no integer limit, but
/// the workspace only needs the u64/i64/f64 split serde_json itself uses).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            Number::F64(_) => None,
        }
    }
}

impl Value {
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object-member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Missing keys index to `Null`, matching `serde_json` semantics.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Serialization / deserialization failure.
#[derive(Clone, Debug)]
pub struct Error(pub String);

impl Error {
    pub fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Lowers a value into the [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Lifts a value back out of the [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::msg("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::msg("expected tuple array"))?;
                Ok(($($t::from_value(
                    a.get($n).ok_or_else(|| Error::msg("tuple too short"))?,
                )?,)+))
            }
        }
    )+};
}
ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
