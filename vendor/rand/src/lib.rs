//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access and an empty registry, so the
//! workspace vendors the small slice of `rand` it actually uses. The only
//! generator is [`rngs::SmallRng`], implemented — like upstream `rand` 0.8 on
//! 64-bit targets — as xoshiro256++ seeded through SplitMix64, so statistical
//! quality matches what the simulation was written against. Determinism is
//! what the simulator cares about: same seed, same stream, forever.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Core generator interface: a source of uniformly random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`]. Mirrors the `rand` 0.8 method set the workspace calls.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::<T>::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53-bit resolution, matching the precision of an f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Converts the generator into an iterator of samples from `distr`.
    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::DistIter::new(distr, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn unit_f64_is_uniform_enough() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
