//! The [`Standard`] distribution, uniform-range sampling, and the iterator
//! adapter behind [`crate::Rng::sample_iter`].

use crate::RngCore;
use std::marker::PhantomData;

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution for a type: full-range integers,
/// `[0, 1)` floats, fair-coin bools.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform f64 in `[0, 1)` with full 53-bit mantissa resolution.
#[inline]
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// Iterator over samples from a distribution (see [`crate::Rng::sample_iter`]).
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: PhantomData<T>,
}

impl<D, R, T> DistIter<D, R, T> {
    pub(crate) fn new(distr: D, rng: R) -> Self {
        DistIter {
            distr,
            rng,
            _marker: PhantomData,
        }
    }
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: Distribution<T>,
    R: RngCore,
{
    type Item = T;

    #[inline]
    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

pub mod uniform {
    //! Uniform sampling over ranges, shaped like `rand::distributions::uniform`.

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: PartialOrd + Copy {
        fn sample_between<R: RngCore + ?Sized>(
            rng: &mut R,
            lo: Self,
            hi: Self,
            inclusive: bool,
        ) -> Self;
    }

    /// Range expressions accepted by [`crate::Rng::gen_range`].
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_between(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = self.into_inner();
            assert!(lo <= hi, "gen_range: empty range");
            T::sample_between(rng, lo, hi, true)
        }
    }

    /// Unbiased integer in `[0, span)` via Lemire's multiply-shift rejection.
    #[inline]
    fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        let threshold = span.wrapping_neg() % span;
        loop {
            let m = (rng.next_u64() as u128) * (span as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    macro_rules! uniform_uint {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_between<R: RngCore + ?Sized>(
                    rng: &mut R,
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                ) -> Self {
                    let span = (hi as u128 - lo as u128) as u64;
                    let span = if inclusive { span.wrapping_add(1) } else { span };
                    if span == 0 {
                        // Inclusive range covering the whole domain.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(below(rng, span) as $t)
                }
            }
        )*};
    }
    uniform_uint!(u8, u16, u32, u64, usize);

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_between<R: RngCore + ?Sized>(
                    rng: &mut R,
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                ) -> Self {
                    let span = (hi as i128 - lo as i128) as u64;
                    let span = if inclusive { span.wrapping_add(1) } else { span };
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(below(rng, span) as $t)
                }
            }
        )*};
    }
    uniform_int!(i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        #[inline]
        fn sample_between<R: RngCore + ?Sized>(
            rng: &mut R,
            lo: Self,
            hi: Self,
            _inclusive: bool,
        ) -> Self {
            let v = lo + super::unit_f64(rng) * (hi - lo);
            // Guard against rounding landing exactly on `hi`.
            if v >= hi {
                lo.max(hi - (hi - lo) * f64::EPSILON)
            } else {
                v
            }
        }
    }

    impl SampleUniform for f32 {
        #[inline]
        fn sample_between<R: RngCore + ?Sized>(
            rng: &mut R,
            lo: Self,
            hi: Self,
            _inclusive: bool,
        ) -> Self {
            let v = lo + (super::unit_f64(rng) as f32) * (hi - lo);
            if v >= hi {
                lo.max(hi - (hi - lo) * f32::EPSILON)
            } else {
                v
            }
        }
    }
}
