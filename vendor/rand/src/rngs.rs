//! Concrete generators. [`SmallRng`] is xoshiro256++ — the algorithm `rand`
//! 0.8 uses for `SmallRng` on 64-bit platforms — seeded via SplitMix64 as
//! recommended by the xoshiro authors so correlated u64 seeds still yield
//! decorrelated states.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator (xoshiro256++).
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro256pp_reference_vector() {
        // First outputs for the all-SplitMix64-from-zero state, checked
        // against the reference C implementation's seeding procedure.
        let mut r = SmallRng::seed_from_u64(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
        // Re-seeding reproduces the stream exactly.
        let mut r2 = SmallRng::seed_from_u64(0);
        assert_eq!(r2.next_u64(), a);
        assert_eq!(r2.next_u64(), b);
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
