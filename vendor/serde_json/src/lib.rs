//! Offline vendored JSON format over the vendored `serde` subset: compact
//! and pretty writers plus a recursive-descent parser. Output is fully
//! deterministic — object fields render in [`Value::Object`] order.

pub use serde::{Error, Number, Value};

use serde::{Deserialize, Serialize};

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-indented JSON (two spaces, like serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

/// Converts a [`Value`] tree into a concrete type.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(&v)
}

// ---- writer ----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) if v.is_finite() => {
            // `{}` on f64 prints the shortest representation; integral floats
            // get an explicit `.0` so they parse back as floats.
            let s = v.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        // JSON has no NaN/Infinity; degrade to null like lenient emitters.
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::msg(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: read the low half if present.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| Error::msg("bad \\u escape"))?);
                            continue;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        let n = if !is_float {
            if text.starts_with('-') {
                text.parse::<i64>().map(Number::I64).ok()
            } else {
                text.parse::<u64>().map(Number::U64).ok()
            }
        } else {
            None
        };
        let n = match n {
            Some(n) => n,
            None => text
                .parse::<f64>()
                .map(Number::F64)
                .map_err(|_| Error::msg(format!("bad number '{text}'")))?,
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&"a\"b\\c\nd").unwrap(), r#""a\"b\\c\nd""#);
        let v: f64 = from_str("2.0").unwrap();
        assert_eq!(v, 2.0);
        let u: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(u, u64::MAX);
    }

    #[test]
    fn roundtrip_nested() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("x".into())),
            (
                "points".into(),
                Value::Array(vec![
                    Value::Number(Number::F64(0.5)),
                    Value::Number(Number::U64(3)),
                ]),
            ),
            ("flag".into(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"{"name":"x","points":[0.5,3],"flag":null}"#);
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back["name"], "x");
        assert_eq!(back["points"].as_array().unwrap().len(), 2);
        assert!(back["flag"].is_null());
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"x\""));
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back, back2);
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str(r#""Aé😀""#).unwrap();
        assert_eq!(s, "Aé😀");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
