//! Offline vendored mini benchmark harness exposing the `criterion` API
//! shape the workspace's benches use. Semantics follow upstream: run under
//! `cargo bench` (argv contains `--bench`) each benchmark is timed over a
//! warmup plus `sample_size` samples and a mean/min/max line is printed;
//! run any other way (e.g. `cargo test` compiling the bench target) each
//! benchmark body executes exactly once as a smoke test.

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement driver handed to each benchmark function.
pub struct Criterion {
    measure: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            measure,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.measure, self.default_sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(
            &label,
            self.criterion.measure,
            self.sample_size
                .unwrap_or(self.criterion.default_sample_size),
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    measure: bool,
    samples: usize,
    elapsed: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.measure {
            // Smoke mode: one execution proves the benchmark still works.
            black_box(f());
            return;
        }
        // Calibrate so each sample lasts ≳1 ms, then collect samples.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        self.iters_per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1) as u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.elapsed
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// Identity function that defeats constant-folding of the benchmark body.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark labels.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Units for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

fn run_one<F>(label: &str, measure: bool, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        measure,
        samples,
        elapsed: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut b);
    if !measure {
        return;
    }
    if b.elapsed.is_empty() {
        println!("{label}: no samples (iter was never called)");
        return;
    }
    let total: Duration = b.elapsed.iter().sum();
    let mean = total / b.elapsed.len() as u32;
    let min = b.elapsed.iter().min().unwrap();
    let max = b.elapsed.iter().max().unwrap();
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if mean.as_nanos() > 0 => {
            let gib = n as f64 / mean.as_secs_f64() / (1 << 30) as f64;
            format!("  {gib:.3} GiB/s")
        }
        Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
            let me = n as f64 / mean.as_secs_f64() / 1e6;
            format!("  {me:.3} Melem/s")
        }
        _ => String::new(),
    };
    println!(
        "{label}: mean {mean:?} (min {min:?}, max {max:?}, {} samples x {} iters){rate}",
        b.elapsed.len(),
        b.iters_per_sample,
    );
}

/// Declares the benchmark group entry points.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
