//! Offline vendored subset of the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable, sliceable view into shared immutable
//! storage (`Arc<[u8]>` + offset/len); [`BytesMut`] is a growable builder
//! that freezes into a [`Bytes`]. [`Buf`]/[`BufMut`] cover the big-endian
//! cursor operations the wire codecs use.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Shared byte-literal Debug body for [`Bytes`] and [`BytesMut`].
macro_rules! fmt_bytes_debug {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "b\"")?;
            for &b in self.as_ref() {
                if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\x{b:02x}")?;
                }
            }
            write!(f, "\"")
        }
    };
}

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        // Arc<[u8]> from a borrowed slice copies once; acceptable for the
        // small static literals used in tests.
        Bytes::copy_from_slice(bytes)
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            start: 0,
            end: data.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same storage.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing `self` past
    /// them.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(..at);
        self.start += at;
        head
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fmt_bytes_debug!();
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

/// Growable mutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.data.extend_from_slice(other);
    }

    /// Converts into an immutable [`Bytes`] without further copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { data: s.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fmt_bytes_debug!();
}

/// Read cursor over a byte buffer; integers are big-endian.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write cursor; integers are appended big-endian.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut out = BytesMut::with_capacity(16);
        out.put_u8(7);
        out.put_u16(300);
        out.put_u32(70_000);
        out.put_u64(u64::MAX - 1);
        let mut buf = out.freeze();
        assert_eq!(buf.remaining(), 15);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16(), 300);
        assert_eq!(buf.get_u32(), 70_000);
        assert_eq!(buf.get_u64(), u64::MAX - 1);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut m = b.clone();
        let head = m.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&m[..], &[3, 4, 5]);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5], "original untouched");
    }

    #[test]
    fn slice_open_ended() {
        let b = Bytes::from_static(b"hello world");
        assert_eq!(&b.slice(..5)[..], b"hello");
        assert_eq!(&b.slice(6..)[..], b"world");
    }
}
