//! Offline vendored shim exposing `crossbeam::thread::scope` on top of
//! `std::thread::scope` (std has had scoped threads since 1.63, so the
//! external crate is only needed for its API shape).

pub mod thread {
    //! Scoped threads with the crossbeam calling convention: the `scope`
    //! closure and every `spawn` closure receive a `&Scope` argument, and
    //! `scope` returns a `Result` like crossbeam's panic-collecting API.

    /// Handle for spawning further threads inside the scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope so it
        /// can spawn nested work, crossbeam-style.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; returns when all of them finished.
    ///
    /// Always returns `Ok`: panics in *joined* threads surface through
    /// [`ScopedJoinHandle::join`], and panics in unjoined threads
    /// propagate out of `std::thread::scope` directly.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_share_borrows() {
            let data = [1u64, 2, 3, 4];
            let total = super::scope(|scope| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 10);
        }
    }
}
