//! Offline vendored mini property-testing harness with the `proptest` macro
//! surface the workspace uses. Differences from upstream: no shrinking (a
//! failing case reports its seed and case index instead), and regex string
//! strategies support only the `[<class>]{m,n}` shapes found in the tests.
//! Case generation is deterministic per test name, so failures reproduce.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Number of cases each property runs.
pub const DEFAULT_CASES: u32 = 128;

/// Per-test driver: a deterministically seeded RNG.
pub struct TestRunner {
    pub rng: SmallRng,
}

impl TestRunner {
    pub fn new(test_name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            rng: SmallRng::seed_from_u64(h),
        }
    }
}

/// A generator of values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut SmallRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut SmallRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Uniform choice between boxed strategies (behind `prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].sample(rng)
    }
}

/// `any::<T>()` — the full-domain strategy for primitive `T`.
pub fn any<T: ArbitraryPrimitive>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryPrimitive> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// Primitives `any` can generate.
pub trait ArbitraryPrimitive {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! arb_prim {
    ($($t:ty),*) => {$(
        impl ArbitraryPrimitive for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
arb_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

// Integer and float ranges are strategies.
macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

// String-regex strategies: `"[<class>]{m,n}"` only.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut SmallRng) -> String {
        let (chars, lo, hi) = parse_class_regex(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy: {self:?}"));
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

/// Parses `[a-z0-9_]{m,n}` style patterns into (alphabet, m, n).
fn parse_class_regex(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            for c in lo..=hi {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if chars.is_empty() {
        return None;
    }
    Some((chars, lo, hi))
}

// Tuples of strategies are strategies.
macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
);

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `BTreeSet` with *up to* the drawn number of elements (duplicates
    /// collapse, as in upstream proptest).
    pub fn btree_set<S>(element: S, len: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, len }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> BTreeSet<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    pub struct OptionStrategy<S>(S);

    /// `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test needs in scope.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, Strategy,
    };
}

/// Defines `#[test]` functions that run their body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::TestRunner::new(stringify!($name));
                for case in 0..$crate::DEFAULT_CASES {
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut runner.rng);)*
                    let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    })();
                    if let Err(msg) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            $crate::DEFAULT_CASES,
                            msg
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the enclosing property case if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Fails the enclosing property case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_regex_parses() {
        let (chars, lo, hi) = parse_class_regex("[ -~]{0,64}").unwrap();
        assert_eq!(lo, 0);
        assert_eq!(hi, 64);
        assert_eq!(chars.len(), 95, "printable ASCII");
        let (chars, lo, hi) = parse_class_regex("[abc]{3,3}").unwrap();
        assert_eq!((lo, hi), (3, 3));
        assert_eq!(chars, vec!['a', 'b', 'c']);
    }

    proptest! {
        #[test]
        fn generated_strings_respect_bounds(s in "[ -~]{0,64}") {
            prop_assert!(s.len() <= 64);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -1e3f64..1e3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1e3..1e3).contains(&y));
        }

        #[test]
        fn oneof_and_map_work(v in prop_oneof![
            Just(0u64),
            (1u64..100).prop_map(|x| x * 2),
        ]) {
            prop_assert!(v == 0 || (v.is_multiple_of(2) && v < 200));
        }
    }
}
