//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! subset. Implemented directly on `proc_macro::TokenStream` (no syn/quote —
//! the registry is offline), which is enough for the shapes the workspace
//! uses: structs with named fields and unit-variant enums.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the derive input declares.
enum Shape {
    /// Struct with named fields, in declaration order.
    Struct { name: String, fields: Vec<String> },
    /// Enum whose variants are all unit variants.
    Enum { name: String, variants: Vec<String> },
}

/// Parses a derive input down to the shape the generators need.
fn parse(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    let mut kind: Option<&'static str> = None;
    let mut name: Option<String> = None;
    let mut body: Option<TokenStream> = None;

    while let Some(tt) = iter.next() {
        match tt {
            // Skip attributes: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = iter.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match (s.as_str(), &kind) {
                    ("struct", None) => kind = Some("struct"),
                    ("enum", None) => kind = Some("enum"),
                    (_, Some(_)) if name.is_none() => name = Some(s),
                    _ => {}
                }
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace && name.is_some() => {
                body = Some(g.stream());
                break;
            }
            _ => {}
        }
    }

    let name = name.expect("derive: missing type name");
    let body = body.expect("derive: missing braced body");
    match kind.expect("derive: expected struct or enum") {
        "struct" => Shape::Struct {
            name,
            fields: struct_fields(body),
        },
        _ => Shape::Enum {
            name,
            variants: enum_variants(body),
        },
    }
}

/// Splits a brace-group token stream on commas at angle-bracket depth 0.
fn split_fields(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in body {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().unwrap().push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Field names of a named-field struct body, in order.
fn struct_fields(body: TokenStream) -> Vec<String> {
    split_fields(body)
        .into_iter()
        .map(|chunk| {
            // The field name is the ident immediately before the first `:`
            // (attributes and visibility precede it; the type follows it).
            let mut prev_ident = None;
            for tt in &chunk {
                match tt {
                    TokenTree::Ident(id) => prev_ident = Some(id.to_string()),
                    TokenTree::Punct(p) if p.as_char() == ':' => break,
                    _ => {}
                }
            }
            prev_ident.expect("derive: field without a name")
        })
        .collect()
}

/// Variant names of a unit-variant enum body, in order.
fn enum_variants(body: TokenStream) -> Vec<String> {
    split_fields(body)
        .into_iter()
        .map(|chunk| {
            let mut last_ident = None;
            for tt in &chunk {
                match tt {
                    TokenTree::Ident(id) => last_ident = Some(id.to_string()),
                    TokenTree::Group(g) if g.delimiter() != Delimiter::Bracket => {
                        panic!("derive: only unit enum variants are supported")
                    }
                    _ => {}
                }
            }
            last_ident.expect("derive: variant without a name")
        })
        .collect()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Object(vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => serde::Value::String(\"{v}\".to_string()),"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derive: generated code parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(\
                             match serde::Value::get(v, \"{f}\") {{\
                                 Some(x) => x,\
                                 None => &serde::Value::Null,\
                             }}\
                         ).map_err(|e| serde::Error::msg(\
                             format!(\"field {f}: {{e}}\")))?,"
                    )
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Some(\"{v}\") => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match serde::Value::as_str(v) {{\n\
                             {arms}\n\
                             _ => Err(serde::Error::msg(\"unknown variant of {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derive: generated code parses")
}
