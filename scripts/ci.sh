#!/usr/bin/env bash
# The CI gate, runnable anywhere with a Rust toolchain (mirrors `just ci`).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

# The determinism lint runs before clippy so its findings fail fast.
echo "==> detlint (determinism & safety static analysis)"
cargo run -q -p livescope-detlint --bin detlint

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test -p livescope-sim --features profile -q"
cargo test -p livescope-sim --features profile -q

echo "CI gate passed."
