#!/usr/bin/env bash
# The CI gate, runnable anywhere with a Rust toolchain (mirrors `just ci`).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

# The determinism lint runs before clippy so its findings fail fast.
# One run gates the tree (token + structural rules + allowlist audit)
# and leaves a SARIF 2.1.0 artifact for CI annotation upload.
echo "==> detlint (determinism & safety static analysis + allowlist audit)"
cargo run -q -p livescope-detlint --bin detlint -- --sarif-out target/detlint.sarif

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test -p livescope-sim --features profile -q"
cargo test -p livescope-sim --features profile -q

echo "==> determinism suite with worker-thread lanes (--features parallel)"
cargo test -p livescope-core --features parallel --test sharded_determinism -q

echo "==> K-shard replay byte-identity with worker threads (--features parallel)"
cargo test -p livescope-core --features parallel --test parallel_replay -q

echo "==> graph partition-invariance suite with scoped assembly workers (--features parallel)"
cargo test -p livescope-graph --features parallel -q

echo "==> rustdoc gate (-D warnings; vendor/* exempt)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p livescope-sim -p livescope-telemetry -p livescope-net \
    -p livescope-proto -p livescope-graph -p livescope-workload \
    -p livescope-cdn -p livescope-client -p livescope-crawler \
    -p livescope-security -p livescope-analysis -p livescope-overlay \
    -p livescope-core -p livescope-bench -p livescope-detlint \
    -p livescope-examples

echo "==> bench_shards smoke (cross-lane checksum invariance)"
cargo run --release -q -p livescope-bench --features parallel --bin bench_shards -- --smoke

echo "==> bench_replay smoke (streaming vs materialized checksum at divisor 1000)"
cargo run --release -q -p livescope-bench --bin bench_replay -- --smoke

echo "==> worker K-sweep smoke (sharded digest == streaming digest, K 1/2/6)"
cargo run --release -q -p livescope-bench --bin bench_replay -- --workers --smoke

echo "==> worker K-sweep smoke with worker threads (--features parallel)"
cargo run --release -q -p livescope-bench --features parallel --bin bench_replay -- --workers --smoke

echo "==> graph-build K-sweep smoke (parallel assembly checksums == committed pins, K 1/2/6)"
cargo run --release -q -p livescope-bench --bin bench_replay -- --graph-only --smoke

echo "==> graph-build K-sweep smoke with scoped worker threads (--features parallel)"
cargo run --release -q -p livescope-bench --features parallel --bin bench_replay -- --graph-only --smoke

echo "==> obs_report smoke (report bytes identical across backends, lanes 1/2/6)"
cargo run --release -q -p livescope-bench --bin obs_report -- --smoke

echo "==> bench-regression gate (fresh artifact vs baselines/)"
cargo run --release -q -p livescope-bench --bin bench_check

echo "CI gate passed."
